/**
 * @file
 * Tests for the on-disk trace-bundle store and the two-tier bundle
 * cache: full serialize/deserialize round-trips, rejection of
 * truncated / bit-flipped / version-mismatched files, atomic publish
 * under concurrent same-key writers, mmap-vs-in-memory replay
 * bit-identity across every commit mode, LRU bounding of the memory
 * tier, and the fail-fast guards on TraceIdx overflow and zero-cycle
 * speedups. The TraceStoreFaults suite drives every publish/read
 * failure path through NOREBA_FAULTS-style injected faults and checks
 * that no partially-published file is ever observable.
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "sim/sweep.h"
#include "sim/trace_store.h"

using namespace noreba;

namespace {

constexpr uint64_t TEST_TRACE_LEN = 20000;

TraceOptions
shortTrace()
{
    TraceOptions opts;
    opts.maxDynInsts = TEST_TRACE_LEN;
    return opts;
}

/** Every scalar field of CoreStats, for bit-identity comparisons. */
std::vector<uint64_t>
statsFingerprint(const CoreStats &s)
{
    return {s.cycles,         s.committedInsts,  s.committedOoO,
            s.committedAhead, s.fetched,         s.setupFetched,
            s.citDrops,       s.icacheStallCycles, s.branches,
            s.mispredicts,    s.squashes,        s.squashedInsts,
            s.dispatched,     s.issued,          s.windowFullCycles,
            s.commitHeadBranchStall, s.commitHeadLoadStall,
            s.steerStallCycles, s.steerStallTlb, s.steerStallCqt,
            s.steerStallCqFull, s.citFullStalls, s.rfReads,
            s.rfWrites,       s.iqWrites,        s.iqWakeups,
            s.robWrites,      s.robReads,        s.lsqOps,
            s.bpredLookups,   s.icacheAccesses,  s.dcacheAccesses,
            s.l2Accesses,     s.l3Accesses,      s.intAluOps,
            s.fpAluOps,       s.cmplxAluOps,     s.renameOps,
            s.cdbBroadcasts,  s.bitOps,          s.dctOps,
            s.cqtOps,         s.citOps,          s.cqOps};
}

/**
 * A store directory under the build tree (tests must not litter /tmp),
 * exported as NOREBA_TRACE_DIR for the test's duration.
 */
struct TempStoreDir
{
    std::string path;

    TempStoreDir()
    {
        char tmpl[] = "noreba_store_test_XXXXXX";
        char *made = mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        path = made ? made : "";
        setenv("NOREBA_TRACE_DIR", path.c_str(), 1);
    }

    ~TempStoreDir()
    {
        unsetenv("NOREBA_TRACE_DIR");
        if (path.empty())
            return;
        if (DIR *d = opendir(path.c_str())) {
            while (dirent *e = readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    unlink((path + "/" + name).c_str());
            }
            closedir(d);
        }
        rmdir(path.c_str());
    }
};

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::vector<uint8_t> bytes;
    FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    if (!f)
        return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return bytes;
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

bool
recordsEqual(const TraceRecord &a, const TraceRecord &b)
{
    return a.pc == b.pc && a.nextPc == b.nextPc &&
           a.addrOrImm == b.addrOrImm && a.op == b.op &&
           a.memSize == b.memSize && a.taken == b.taken &&
           a.markedBranch == b.markedBranch &&
           a.orderSensitive == b.orderSensitive &&
           a.orderStrict == b.orderStrict && a.rd == b.rd &&
           a.rs1 == b.rs1 && a.rs2 == b.rs2 && a.rs3 == b.rs3 &&
           a.guardIdx == b.guardIdx;
}

TEST(TraceStore, RoundTripsEveryBundleField)
{
    TempStoreDir dir;
    TraceBundle bundle = prepareTrace("CRC32", shortTrace());
    const std::string path = traceBundlePath("CRC32", shortTrace());
    ASSERT_FALSE(path.empty());
    ASSERT_GT(saveTraceBundle(path, bundle), 0u);

    auto mapped = MappedTraceBundle::open(path);
    ASSERT_NE(mapped, nullptr);
    EXPECT_EQ(mapped->workload(), "CRC32");
    EXPECT_EQ(mapped->archChecksum(), bundle.checksum);

    TraceView disk = mapped->view();
    TraceView mem = bundle.view();
    ASSERT_EQ(disk.size(), mem.size());
    EXPECT_EQ(disk.name(), mem.name());
    for (size_t i = 0; i < mem.size(); ++i)
        ASSERT_TRUE(recordsEqual(disk[i], mem[i])) << "record " << i;

    const TraceSummary &ds = disk.summary();
    const TraceSummary &ms = mem.summary();
    EXPECT_EQ(ds.dynInsts, ms.dynInsts);
    EXPECT_EQ(ds.setupInsts, ms.setupInsts);
    EXPECT_EQ(ds.branches, ms.branches);
    EXPECT_EQ(ds.takenBranches, ms.takenBranches);
    EXPECT_EQ(ds.loads, ms.loads);
    EXPECT_EQ(ds.stores, ms.stores);
    EXPECT_EQ(ds.truncated, ms.truncated);

    EXPECT_EQ(mapped->misp(), bundle.misp);

    const PassResult &dp = mapped->pass();
    const PassResult &mp = bundle.pass;
    EXPECT_EQ(dp.numMarkedBranches, mp.numMarkedBranches);
    EXPECT_EQ(dp.numRegions, mp.numRegions);
    EXPECT_EQ(dp.numSetupInsts, mp.numSetupInsts);
    EXPECT_EQ(dp.instsBefore, mp.instsBefore);
    EXPECT_EQ(dp.instsAfter, mp.instsAfter);
    EXPECT_EQ(dp.numChainMerges, mp.numChainMerges);
    EXPECT_EQ(dp.numStrictRegions, mp.numStrictRegions);
    EXPECT_EQ(dp.guardOfInst, mp.guardOfInst);
    ASSERT_EQ(dp.branches.size(), mp.branches.size());
    for (size_t i = 0; i < mp.branches.size(); ++i) {
        const BranchSite &a = dp.branches[i];
        const BranchSite &b = mp.branches[i];
        EXPECT_EQ(a.bb, b.bb);
        EXPECT_EQ(a.instIdx, b.instIdx);
        EXPECT_EQ(a.globalIdx, b.globalIdx);
        EXPECT_EQ(a.compilerId, b.compilerId);
        EXPECT_EQ(a.reconvBlock, b.reconvBlock);
        EXPECT_EQ(a.guard, b.guard);
        EXPECT_EQ(a.numControlDeps, b.numControlDeps);
        EXPECT_EQ(a.numDataDeps, b.numDataDeps);
        EXPECT_EQ(a.controlBlocks, b.controlBlocks);
    }
}

TEST(TraceStore, RejectsTruncatedBitFlippedAndVersionMismatchedFiles)
{
    TempStoreDir dir;
    TraceBundle bundle = prepareTrace("CRC32", shortTrace());
    const std::string path = traceBundlePath("CRC32", shortTrace());
    ASSERT_GT(saveTraceBundle(path, bundle), 0u);
    const std::vector<uint8_t> good = readFile(path);
    ASSERT_NE(MappedTraceBundle::open(path), nullptr);

    // Truncated: the trailing bytes are gone.
    std::vector<uint8_t> bad(good.begin(), good.end() - 7);
    writeFile(path, bad);
    EXPECT_EQ(MappedTraceBundle::open(path), nullptr);

    // Truncated below even the header.
    bad.assign(good.begin(), good.begin() + 16);
    writeFile(path, bad);
    EXPECT_EQ(MappedTraceBundle::open(path), nullptr);

    // A single flipped payload bit must fail the checksum.
    bad = good;
    bad[good.size() / 2] ^= 0x10;
    writeFile(path, bad);
    EXPECT_EQ(MappedTraceBundle::open(path), nullptr);

    // A version bump (byte 8, right after the magic) must be rejected,
    // not half-read with the old layout.
    bad = good;
    bad[8] ^= 0xff;
    writeFile(path, bad);
    EXPECT_EQ(MappedTraceBundle::open(path), nullptr);

    // Pristine bytes restore a loadable bundle.
    writeFile(path, good);
    EXPECT_NE(MappedTraceBundle::open(path), nullptr);
}

TEST(TraceStore, ConcurrentSameKeyWritersPublishAtomically)
{
    TempStoreDir dir;
    TraceBundle bundle = prepareTrace("CRC32", shortTrace());
    const std::string path = traceBundlePath("CRC32", shortTrace());

    // Many writers race on one key; readers poll throughout. A reader
    // must only ever observe "no file yet" or a fully valid bundle.
    std::atomic<bool> sawInvalid{false};
    std::atomic<int> published{0};
    ThreadPool pool(8);
    for (int i = 0; i < 8; ++i) {
        pool.submit([&] {
            if (saveTraceBundle(path, bundle) > 0)
                ++published;
            struct stat st;
            if (::stat(path.c_str(), &st) == 0 &&
                MappedTraceBundle::open(path) == nullptr)
                sawInvalid = true;
        });
    }
    pool.wait();
    EXPECT_FALSE(sawInvalid.load());
    EXPECT_EQ(published.load(), 8);
    auto mapped = MappedTraceBundle::open(path);
    ASSERT_NE(mapped, nullptr);
    EXPECT_EQ(mapped->view().size(), bundle.view().size());

    // No temp files left behind by the racing writers.
    int leftover = 0;
    if (DIR *d = opendir(dir.path.c_str())) {
        while (dirent *e = readdir(d))
            if (std::strstr(e->d_name, ".tmp."))
                ++leftover;
        closedir(d);
    }
    EXPECT_EQ(leftover, 0);
}

TEST(TraceStore, MmapReplayBitIdenticalForEveryCommitMode)
{
    const CommitMode modes[] = {
        CommitMode::InOrder,       CommitMode::NonSpecOoO,
        CommitMode::Noreba,        CommitMode::IdealReconv,
        CommitMode::SpeculativeBR, CommitMode::SpeculativeFull,
        CommitMode::ValidationBuffer,
    };
    std::vector<SweepJob> jobs;
    for (CommitMode mode : modes) {
        CoreConfig cfg = skylakeConfig();
        cfg.commitMode = mode;
        jobs.push_back(SweepJob{"CRC32", cfg, shortTrace()});
    }

    // Reference: in-memory replay with the store disabled.
    unsetenv("NOREBA_TRACE_DIR");
    BundleCache memCache;
    auto memResults = SweepRunner(2, &memCache).run(jobs);
    EXPECT_EQ(memCache.stats().diskHits, 0u);

    TempStoreDir dir;

    // Cold: builds and publishes the bundle.
    BundleCache coldCache;
    auto coldResults = SweepRunner(2, &coldCache).run(jobs);
    BundleCacheStats cold = coldCache.stats();
    EXPECT_EQ(cold.builds, 1u);
    EXPECT_EQ(cold.diskHits, 0u);
    EXPECT_GT(cold.bytesWritten, 0u);

    // Warm: a fresh cache (standing in for a new process) mmaps it.
    BundleCache warmCache;
    auto warmResults = SweepRunner(2, &warmCache).run(jobs);
    BundleCacheStats warm = warmCache.stats();
    EXPECT_EQ(warm.builds, 0u);
    EXPECT_EQ(warm.diskHits, 1u);
    EXPECT_GT(warm.bytesMapped, 0u);

    ASSERT_EQ(memResults.size(), jobs.size());
    ASSERT_EQ(coldResults.size(), jobs.size());
    ASSERT_EQ(warmResults.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(statsFingerprint(memResults[i].stats),
                  statsFingerprint(coldResults[i].stats))
            << commitModeName(jobs[i].cfg.commitMode) << " (cold)";
        EXPECT_EQ(statsFingerprint(memResults[i].stats),
                  statsFingerprint(warmResults[i].stats))
            << commitModeName(jobs[i].cfg.commitMode) << " (mmap)";
    }
}

TEST(TraceStore, StrippedBundlesRoundTripThroughTheStore)
{
    TempStoreDir dir;
    TraceOptions stripped = shortTrace();
    stripped.stripSetups = true;

    BundleCache coldCache;
    auto cold = coldCache.get("mcf", stripped);
    BundleCache warmCache;
    auto warm = warmCache.get("mcf", stripped);
    EXPECT_EQ(warmCache.stats().diskHits, 1u);

    TraceView a = cold->view(), b = warm->view();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.summary().setupInsts, 0u);
    EXPECT_EQ(b.summary().setupInsts, 0u);
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(recordsEqual(a[i], b[i])) << "record " << i;
}

TEST(BundleCache, LruTierEvictsButSharedOwnersKeepBundlesAlive)
{
    TraceOptions tiny;
    tiny.maxDynInsts = 2000;
    BundleCache cache(1);
    auto first = cache.get("CRC32", tiny);
    auto second = cache.get("mcf", tiny);
    EXPECT_LE(cache.size(), 1u);
    EXPECT_GE(cache.stats().evictions, 1u);
    // The evicted bundle is still fully usable through its shared_ptr.
    EXPECT_GT(first->view().size(), 0u);
    EXPECT_GT(second->view().size(), 0u);

    // Re-requesting the evicted key rebuilds rather than crashing.
    auto again = cache.get("CRC32", tiny);
    EXPECT_EQ(again->view().size(), first->view().size());
}

TEST(BundleCache, CapacityFromEnvRejectsGarbage)
{
    ASSERT_EQ(setenv("NOREBA_BUNDLE_CACHE_CAP", "many", 1), 0);
    EXPECT_EXIT(BundleCache::capacityFromEnv(),
                ::testing::ExitedWithCode(1), "not a non-negative");
    ASSERT_EQ(setenv("NOREBA_BUNDLE_CACHE_CAP", "4", 1), 0);
    EXPECT_EQ(BundleCache::capacityFromEnv(), 4u);
    ASSERT_EQ(unsetenv("NOREBA_BUNDLE_CACHE_CAP"), 0);
}

// Satellite guards: overlong traces and zero-cycle speedups fail fast
// instead of silently corrupting TraceIdx arithmetic or geomeans.

TEST(TraceLimits, InterpreterThrowsSimErrorBeyondTraceIdxRange)
{
    TraceOptions opts;
    opts.maxDynInsts = MAX_TRACE_RECORDS + 1;
    // Thrown (not fatal()): an overlong workload must fail its own
    // sweep job, not the whole bench process (DESIGN.md §14).
    try {
        prepareTrace("CRC32", opts);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.site(), "interp.trace_limit");
        EXPECT_NE(std::string(e.what()).find("TraceIdx limit"),
                  std::string::npos);
    }
}

TEST(TraceLimits, SpeedupPanicsOnZeroCycleRuns)
{
    CoreStats baseline, candidate;
    baseline.cycles = 100;
    candidate.cycles = 0;
    EXPECT_DEATH(speedup(baseline, candidate), "zero-cycle");
    EXPECT_DEATH(speedup(candidate, baseline), "zero-cycle");
}

// Fault-injected failure paths: every way a publish or read-back can
// fail must leave the store with either the old state or the complete
// new file — never a torn one — and clean up its temp files.

/** Disarm + clear store degradation on scope exit, pass or fail. */
struct FaultGuard
{
    ~FaultGuard()
    {
        FaultRegistry::instance().disarm();
        resetTraceStoreHealth();
    }
};

int
tmpFilesIn(const std::string &dir)
{
    int n = 0;
    if (DIR *d = opendir(dir.c_str())) {
        while (dirent *e = readdir(d))
            if (std::strstr(e->d_name, ".tmp."))
                ++n;
        closedir(d);
    }
    return n;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

class TraceStoreFaults : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        resetTraceStoreHealth();
        bundle_ = prepareTrace("CRC32", shortTrace());
        path_ = traceBundlePath("CRC32", shortTrace());
        ASSERT_FALSE(path_.empty());
    }

    /** Arm @p plan, expect the publish to fail without leaving any
     *  file, then confirm a clean retry publishes a valid bundle. */
    void
    expectFailedThenCleanPublish(const std::string &plan)
    {
        FaultGuard guard;
        FaultRegistry::instance().arm(plan);
        EXPECT_EQ(saveTraceBundle(path_, bundle_), 0u);
        EXPECT_FALSE(fileExists(path_)) << "partial file published";
        EXPECT_EQ(tmpFilesIn(dir_.path), 0) << "temp file left behind";

        FaultRegistry::instance().disarm();
        resetTraceStoreHealth();
        EXPECT_GT(saveTraceBundle(path_, bundle_), 0u);
        EXPECT_NE(MappedTraceBundle::open(path_), nullptr);
    }

    TempStoreDir dir_;
    TraceBundle bundle_;
    std::string path_;
};

TEST_F(TraceStoreFaults, ShortWriteLeavesNoPartialFile)
{
    // x3 defeats all three publish attempts.
    expectFailedThenCleanPublish("trace_store.write=short-write@1x3");
}

TEST_F(TraceStoreFaults, FailedFsyncLeavesNoPartialFile)
{
    expectFailedThenCleanPublish("trace_store.fsync=eio@1x3");
}

TEST_F(TraceStoreFaults, FailedRenameLeavesNoPartialFile)
{
    expectFailedThenCleanPublish("trace_store.rename=eio@1x3");
}

TEST_F(TraceStoreFaults, TransientWriteFaultIsRetriedToSuccess)
{
    FaultGuard guard;
    // Only the first attempt's write fails; the bounded retry must
    // publish a fully valid bundle on attempt two.
    FaultRegistry::instance().arm("trace_store.write=eio@1");
    EXPECT_GT(saveTraceBundle(path_, bundle_), 0u);
    EXPECT_GE(FaultRegistry::instance().hitCount("trace_store.write"), 2u);
    EXPECT_EQ(tmpFilesIn(dir_.path), 0);
    EXPECT_NE(MappedTraceBundle::open(path_), nullptr);
}

TEST_F(TraceStoreFaults, ReadBackEioIsACacheMissNotACrash)
{
    FaultGuard guard;
    ASSERT_GT(saveTraceBundle(path_, bundle_), 0u);
    FaultRegistry::instance().arm("trace_store.read=eio@1");
    EXPECT_EQ(MappedTraceBundle::open(path_), nullptr);
    // The fault was one-shot: the intact file serves the next open.
    EXPECT_NE(MappedTraceBundle::open(path_), nullptr);
}

TEST_F(TraceStoreFaults, RepeatedPublishFailuresDegradeToBypass)
{
    FaultGuard guard;
    FaultRegistry::instance().arm("trace_store.write=eio@1x*");
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(saveTraceBundle(path_, bundle_), 0u);
    EXPECT_TRUE(traceStoreBypassed());

    // Degraded: no disk activity even with the fault gone.
    FaultRegistry::instance().disarm();
    EXPECT_EQ(saveTraceBundle(path_, bundle_), 0u);
    EXPECT_FALSE(fileExists(path_));

    // Reset re-arms the store.
    resetTraceStoreHealth();
    EXPECT_GT(saveTraceBundle(path_, bundle_), 0u);
    EXPECT_NE(MappedTraceBundle::open(path_), nullptr);
}

TEST_F(TraceStoreFaults, InjectedThrowAtStoreSitePropagatesAndCleansUp)
{
    FaultGuard guard;
    FaultRegistry::instance().arm("trace_store.fsync=throw@1");
    EXPECT_THROW(saveTraceBundle(path_, bundle_), InjectedFault);
    EXPECT_FALSE(fileExists(path_));
    EXPECT_EQ(tmpFilesIn(dir_.path), 0);
}

} // namespace
