/**
 * @file
 * Tests for the canonical CoreConfig serialization (the X-macro field
 * table in uarch/config.h) and the content-addressed simulation-result
 * store: per-field round-trips and fingerprint sensitivity, strict
 * deserialization, key coverage of every simulation-shaping knob,
 * save/load round-trips including branch-stall attribution, rejection
 * of truncated / bit-flipped / version-mismatched / wrong-key files,
 * and the in-process ResultCache + SweepRunner integration that the
 * warm `noreba-bench --run all` acceptance check rests on.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/fault.h"
#include "sim/result_store.h"
#include "sim/sweep.h"
#include "uarch/config.h"
#include "uarch/stats.h"

using namespace noreba;

namespace {

constexpr uint64_t TEST_TRACE_LEN = 20000;

TraceOptions
shortTrace()
{
    TraceOptions opts;
    opts.maxDynInsts = TEST_TRACE_LEN;
    return opts;
}

/**
 * A result-store directory under the build tree, exported as
 * NOREBA_RESULT_DIR for the test's duration.
 */
struct TempResultDir
{
    std::string path;

    TempResultDir()
    {
        char tmpl[] = "noreba_result_test_XXXXXX";
        char *made = mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        path = made ? made : "";
        setenv("NOREBA_RESULT_DIR", path.c_str(), 1);
    }

    ~TempResultDir()
    {
        unsetenv("NOREBA_RESULT_DIR");
        if (path.empty())
            return;
        if (DIR *d = opendir(path.c_str())) {
            while (dirent *e = readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    unlink((path + "/" + name).c_str());
            }
            closedir(d);
        }
        rmdir(path.c_str());
    }
};

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::vector<uint8_t> bytes;
    FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    if (!f)
        return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return bytes;
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

/** Mutate one field through its table entry; returns a description. */
std::string
mutateField(const ConfigFieldRef &ref)
{
    switch (ref.kind) {
    case ConfigFieldRef::Kind::Str:
        *ref.str += "-mutated";
        return "string";
    case ConfigFieldRef::Kind::Int:
        *ref.i += 1;
        return "int";
    case ConfigFieldRef::Kind::Bool:
        *ref.b = !*ref.b;
        return "bool";
    case ConfigFieldRef::Kind::U64:
        *ref.u += 1;
        return "u64";
    case ConfigFieldRef::Kind::Mode:
        *ref.mode = *ref.mode == CommitMode::InOrder
                        ? CommitMode::Noreba
                        : CommitMode::InOrder;
        return "mode";
    }
    return "?";
}

bool
configsEqual(const CoreConfig &a, const CoreConfig &b)
{
    return serializeConfig(a) == serializeConfig(b);
}

/** A synthetic CoreStats with every counter distinct and non-zero. */
CoreStats
syntheticStats()
{
    CoreStats stats;
    uint64_t next = 1;
    for (const CoreStatsField &f : CORE_STATS_FIELDS)
        if (f.counter)
            stats.*(f.counter) = next++ * 7919;
    stats.branchStalls[0x400100] = BranchStall{123, 45, 6};
    stats.branchStalls[0x400200] = BranchStall{7, 8, 9};
    return stats;
}

bool
statsEqual(const CoreStats &a, const CoreStats &b)
{
    for (const CoreStatsField &f : CORE_STATS_FIELDS)
        if (f.counter && a.*(f.counter) != b.*(f.counter))
            return false;
    if (a.branchStalls.size() != b.branchStalls.size())
        return false;
    for (const auto &kv : a.branchStalls) {
        auto it = b.branchStalls.find(kv.first);
        if (it == b.branchStalls.end() ||
            it->second.stallCycles != kv.second.stallCycles ||
            it->second.instances != kv.second.instances ||
            it->second.dependents != kv.second.dependents)
            return false;
    }
    return true;
}

TEST(ConfigSerialization, RoundTripsEveryFactoryAndCommitMode)
{
    const CommitMode modes[] = {
        CommitMode::InOrder,       CommitMode::NonSpecOoO,
        CommitMode::Noreba,        CommitMode::IdealReconv,
        CommitMode::SpeculativeBR, CommitMode::SpeculativeFull,
        CommitMode::ValidationBuffer,
    };
    CoreConfig factories[] = {skylakeConfig(), haswellConfig(),
                              nehalemConfig()};
    for (CoreConfig &base : factories) {
        for (CommitMode mode : modes) {
            CoreConfig cfg = base;
            cfg.commitMode = mode;
            const std::string text = serializeConfig(cfg);
            CoreConfig parsed;
            ASSERT_TRUE(deserializeConfig(text, parsed)) << text;
            EXPECT_TRUE(configsEqual(cfg, parsed))
                << cfg.name << "/" << commitModeName(mode);
            EXPECT_EQ(configFingerprint(cfg), configFingerprint(parsed));
        }
    }
}

TEST(ConfigSerialization, EveryTableFieldAppearsExactlyOnce)
{
    CoreConfig cfg = skylakeConfig();
    const std::string text = serializeConfig(cfg);
    for (const ConfigFieldRef &ref : configFieldRefs(cfg)) {
        const std::string line = std::string(ref.name) + "=";
        size_t first = text.find(line);
        ASSERT_NE(first, std::string::npos) << ref.name;
        // Anchored at the start of a line.
        EXPECT_TRUE(first == 0 || text[first - 1] == '\n') << ref.name;
    }
    // Line count matches the table size — nothing extra, nothing
    // repeated.
    size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, configFieldRefs(cfg).size());
}

TEST(ConfigSerialization, MutatingAnyFieldChangesTheFingerprint)
{
    CoreConfig base = skylakeConfig();
    const uint64_t baseFp = configFingerprint(base);
    const size_t numFields = configFieldRefs(base).size();
    ASSERT_GT(numFields, 50u);

    for (size_t i = 0; i < numFields; ++i) {
        CoreConfig cfg = skylakeConfig();
        auto refs = configFieldRefs(cfg);
        const std::string kind = mutateField(refs[i]);
        EXPECT_NE(configFingerprint(cfg), baseFp)
            << refs[i].name << " (" << kind
            << ") not covered by the fingerprint";

        // And the mutated config still round-trips.
        CoreConfig parsed;
        ASSERT_TRUE(deserializeConfig(serializeConfig(cfg), parsed))
            << refs[i].name;
        EXPECT_TRUE(configsEqual(cfg, parsed)) << refs[i].name;
    }
}

TEST(ConfigSerialization, DeserializeIsStrict)
{
    CoreConfig cfg = skylakeConfig();
    const std::string good = serializeConfig(cfg);
    CoreConfig out;
    ASSERT_TRUE(deserializeConfig(good, out));

    // A missing field (drop the first line).
    std::string bad = good.substr(good.find('\n') + 1);
    EXPECT_FALSE(deserializeConfig(bad, out));

    // A duplicated field.
    bad = good + good.substr(0, good.find('\n') + 1);
    EXPECT_FALSE(deserializeConfig(bad, out));

    // An unknown field.
    bad = good + "noSuchKnob=1\n";
    EXPECT_FALSE(deserializeConfig(bad, out));

    // A garbage integer value.
    bad = good;
    size_t pos = bad.find("fetchWidth=");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, bad.find('\n', pos) - pos, "fetchWidth=wide");
    EXPECT_FALSE(deserializeConfig(bad, out));

    // An unknown commit-mode name.
    bad = good;
    pos = bad.find("commitMode=");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, bad.find('\n', pos) - pos, "commitMode=Turbo");
    EXPECT_FALSE(deserializeConfig(bad, out));
}

TEST(ConfigSerialization, CommitModeNamesRoundTrip)
{
    const CommitMode modes[] = {
        CommitMode::InOrder,       CommitMode::NonSpecOoO,
        CommitMode::Noreba,        CommitMode::IdealReconv,
        CommitMode::SpeculativeBR, CommitMode::SpeculativeFull,
        CommitMode::ValidationBuffer,
    };
    for (CommitMode mode : modes) {
        CommitMode parsed;
        ASSERT_TRUE(commitModeFromName(commitModeName(mode), parsed));
        EXPECT_EQ(parsed, mode);
    }
    CommitMode parsed;
    EXPECT_FALSE(commitModeFromName("NotACommitMode", parsed));
}

TEST(ResultStore, KeyCoversEverySimulationShapingKnob)
{
    CoreConfig cfg = skylakeConfig();
    const TraceOptions opts = shortTrace();
    const std::string base = resultKey("CRC32", cfg, opts);

    EXPECT_NE(resultKey("mcf", cfg, opts), base);

    CoreConfig widened = cfg;
    widened.commitWidth += 1;
    EXPECT_NE(resultKey("CRC32", widened, opts), base);

    TraceOptions longer = opts;
    longer.maxDynInsts += 1;
    EXPECT_NE(resultKey("CRC32", cfg, longer), base);

    TraceOptions plain = opts;
    plain.annotate = false;
    EXPECT_NE(resultKey("CRC32", cfg, plain), base);

    TraceOptions stripped = opts;
    stripped.stripSetups = true;
    EXPECT_NE(resultKey("CRC32", cfg, stripped), base);

    // The full canonical config serialization is embedded in the key,
    // so every table field is covered by construction.
    EXPECT_NE(base.find(serializeConfig(cfg)), std::string::npos);
}

TEST(ResultStore, PathIsEmptyWhenTheStoreIsDisabled)
{
    unsetenv("NOREBA_RESULT_DIR");
    EXPECT_TRUE(resultStoreDir().empty());
    EXPECT_TRUE(
        resultPath("CRC32", skylakeConfig(), shortTrace()).empty());

    TempResultDir dir;
    EXPECT_EQ(resultStoreDir(), dir.path);
    EXPECT_FALSE(
        resultPath("CRC32", skylakeConfig(), shortTrace()).empty());
}

TEST(ResultStore, EligibilityExcludesVerificationAndEventTraceRuns)
{
    CoreConfig cfg = skylakeConfig();
    EXPECT_TRUE(resultStoreEligible(cfg));

    CoreConfig stalls = cfg;
    stalls.attributeStalls = true;
    EXPECT_TRUE(resultStoreEligible(stalls));

    CoreConfig events = cfg;
    events.eventTrace = true;
    EXPECT_FALSE(resultStoreEligible(events));

    CoreConfig safety = cfg;
    safety.safetyChecks = true;
    EXPECT_FALSE(resultStoreEligible(safety));

    CoreConfig shadow = cfg;
    shadow.shadowIndexCheck = true;
    EXPECT_FALSE(resultStoreEligible(shadow));
}

TEST(ResultStore, RoundTripsEveryCounterAndBranchStalls)
{
    TempResultDir dir;
    CoreConfig cfg = skylakeConfig();
    cfg.attributeStalls = true;
    const std::string key = resultKey("CRC32", cfg, shortTrace());
    const std::string path = resultPath("CRC32", cfg, shortTrace());
    ASSERT_FALSE(path.empty());

    const CoreStats written = syntheticStats();
    ASSERT_GT(saveResult(path, key, written), 0u);

    CoreStats loaded;
    ASSERT_TRUE(loadResult(path, key, loaded));
    EXPECT_TRUE(statsEqual(written, loaded));

    // The wrong key text must miss even at the right path — this is
    // the hash-collision guard.
    CoreStats miss;
    EXPECT_FALSE(
        loadResult(path, resultKey("mcf", cfg, shortTrace()), miss));
}

TEST(ResultStore, RejectsTruncatedBitFlippedAndVersionMismatchedFiles)
{
    TempResultDir dir;
    CoreConfig cfg = skylakeConfig();
    const std::string key = resultKey("CRC32", cfg, shortTrace());
    const std::string path = resultPath("CRC32", cfg, shortTrace());
    ASSERT_GT(saveResult(path, key, syntheticStats()), 0u);

    const std::vector<uint8_t> good = readFile(path);
    CoreStats out;
    ASSERT_TRUE(loadResult(path, key, out));

    // Truncated: the trailing bytes are gone.
    std::vector<uint8_t> bad(good.begin(), good.end() - 5);
    writeFile(path, bad);
    EXPECT_FALSE(loadResult(path, key, out));

    // Truncated below even the header.
    bad.assign(good.begin(), good.begin() + 16);
    writeFile(path, bad);
    EXPECT_FALSE(loadResult(path, key, out));

    // A single flipped payload bit must fail the checksum.
    bad = good;
    bad[good.size() - 3] ^= 0x08;
    writeFile(path, bad);
    EXPECT_FALSE(loadResult(path, key, out));

    // A format-version bump (byte 8, right after the magic) must be
    // rejected, not half-read with the old layout.
    bad = good;
    bad[8] ^= 0xff;
    writeFile(path, bad);
    EXPECT_FALSE(loadResult(path, key, out));

    // A missing file is a miss, not a crash.
    EXPECT_FALSE(loadResult(path + ".nope", key, out));

    // Pristine bytes restore a loadable result.
    writeFile(path, good);
    EXPECT_TRUE(loadResult(path, key, out));
}

TEST(ResultCache, DedupsInProcessAndCountsMemoryHits)
{
    unsetenv("NOREBA_RESULT_DIR");
    ResultCache cache;
    SweepJob job{"CRC32", skylakeConfig(), shortTrace()};

    int simulations = 0;
    auto sim = [&] {
        ++simulations;
        CoreStats s;
        s.cycles = 42;
        s.committedInsts = 21;
        return s;
    };

    CoreStats first = cache.get(job, sim);
    CoreStats second = cache.get(job, sim);
    EXPECT_EQ(simulations, 1);
    EXPECT_EQ(first.cycles, 42u);
    EXPECT_EQ(second.cycles, 42u);
    EXPECT_EQ(cache.size(), 1u);

    SimCacheStats stats = cache.stats();
    EXPECT_EQ(stats.simBuilds, 1u);
    EXPECT_EQ(stats.memHits, 1u);
    EXPECT_EQ(stats.diskHits, 0u);
    EXPECT_EQ(stats.stored, 0u); // store disabled

    // A different config is a different entry.
    SweepJob other = job;
    other.cfg.commitMode = CommitMode::Noreba;
    cache.get(other, sim);
    EXPECT_EQ(simulations, 2);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, ServesDiskHitsAcrossCacheInstances)
{
    TempResultDir dir;
    SweepJob job{"CRC32", skylakeConfig(), shortTrace()};

    int simulations = 0;
    auto sim = [&] {
        ++simulations;
        return syntheticStats();
    };

    ResultCache cold;
    CoreStats built = cold.get(job, sim);
    EXPECT_EQ(simulations, 1);
    SimCacheStats coldStats = cold.stats();
    EXPECT_EQ(coldStats.simBuilds, 1u);
    EXPECT_EQ(coldStats.stored, 1u);
    EXPECT_GT(coldStats.bytesWritten, 0u);

    // A fresh cache (standing in for a new process) replays from disk
    // without invoking the simulation at all.
    ResultCache warm;
    CoreStats replayed = warm.get(job, sim);
    EXPECT_EQ(simulations, 1);
    SimCacheStats warmStats = warm.stats();
    EXPECT_EQ(warmStats.simBuilds, 0u);
    EXPECT_EQ(warmStats.diskHits, 1u);
    EXPECT_TRUE(statsEqual(built, replayed));

    // Ineligible configs bypass the disk store entirely.
    SweepJob traced = job;
    traced.cfg.eventTrace = true;
    ResultCache bypass;
    bypass.get(traced, sim);
    EXPECT_EQ(simulations, 2);
    ResultCache bypass2;
    bypass2.get(traced, sim);
    EXPECT_EQ(simulations, 3);
    EXPECT_EQ(bypass2.stats().diskHits, 0u);
}

TEST(ResultCache, SimulationFailuresAreNotCached)
{
    unsetenv("NOREBA_RESULT_DIR");
    ResultCache cache;
    SweepJob job{"CRC32", skylakeConfig(), shortTrace()};

    int attempts = 0;
    EXPECT_THROW(cache.get(job,
                           [&]() -> CoreStats {
                               ++attempts;
                               throw std::runtime_error("boom");
                           }),
                 std::runtime_error);

    // The failed entry was removed; a retry simulates again and
    // succeeds.
    CoreStats ok = cache.get(job, [&] {
        ++attempts;
        CoreStats s;
        s.cycles = 7;
        return s;
    });
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(ok.cycles, 7u);
}

TEST(SweepRunner, WarmRunReplaysBitIdenticalResultsWithoutSimulating)
{
    TempResultDir dir;
    const CommitMode modes[] = {CommitMode::InOrder, CommitMode::Noreba,
                                CommitMode::NonSpecOoO};
    std::vector<SweepJob> jobs;
    for (CommitMode mode : modes) {
        CoreConfig cfg = skylakeConfig();
        cfg.commitMode = mode;
        jobs.push_back(SweepJob{"CRC32", cfg, shortTrace()});
    }
    // Duplicate the first job: in-process dedup must simulate it once.
    jobs.push_back(jobs.front());

    BundleCache coldBundles;
    ResultCache cold;
    auto coldResults = SweepRunner(2, &coldBundles, &cold).run(jobs);
    SimCacheStats coldStats = cold.stats();
    EXPECT_EQ(coldStats.simBuilds, 3u);
    EXPECT_EQ(coldStats.memHits + coldStats.sharedSims, 1u);
    EXPECT_EQ(coldStats.stored, 3u);

    BundleCache warmBundles;
    ResultCache warm;
    auto warmResults = SweepRunner(2, &warmBundles, &warm).run(jobs);
    SimCacheStats warmStats = warm.stats();
    EXPECT_EQ(warmStats.simBuilds, 0u);
    EXPECT_EQ(warmStats.diskHits, 3u);

    // Disk hits never materialize a trace bundle.
    EXPECT_EQ(warmBundles.stats().builds, 0u);
    EXPECT_EQ(warmBundles.stats().diskHits, 0u);

    ASSERT_EQ(coldResults.size(), jobs.size());
    ASSERT_EQ(warmResults.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(statsEqual(coldResults[i].stats,
                               warmResults[i].stats))
            << commitModeName(jobs[i].cfg.commitMode);
        EXPECT_EQ(warmResults[i].job.workload, jobs[i].workload);
    }
}

// Fault-injected failure paths, mirroring the trace-store suite: a
// failed publish or read-back must be a clean cache miss, never a
// torn file or a leftover temp file.

/** Disarm + clear store degradation on scope exit, pass or fail. */
struct FaultGuard
{
    ~FaultGuard()
    {
        FaultRegistry::instance().disarm();
        resetResultStoreHealth();
    }
};

int
tmpFilesIn(const std::string &dir)
{
    int n = 0;
    if (DIR *d = opendir(dir.c_str())) {
        while (dirent *e = readdir(d)) {
            if (std::string(e->d_name).find(".tmp.") != std::string::npos)
                ++n;
        }
        closedir(d);
    }
    return n;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

class ResultStoreFaults : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        resetResultStoreHealth();
        cfg_ = skylakeConfig();
        key_ = resultKey("CRC32", cfg_, shortTrace());
        path_ = resultPath("CRC32", cfg_, shortTrace());
        ASSERT_FALSE(path_.empty());
        stats_ = syntheticStats();
    }

    void
    expectFailedThenCleanPublish(const std::string &plan)
    {
        FaultGuard guard;
        FaultRegistry::instance().arm(plan);
        EXPECT_EQ(saveResult(path_, key_, stats_), 0u);
        EXPECT_FALSE(fileExists(path_)) << "partial file published";
        EXPECT_EQ(tmpFilesIn(dir_.path), 0) << "temp file left behind";

        FaultRegistry::instance().disarm();
        resetResultStoreHealth();
        EXPECT_GT(saveResult(path_, key_, stats_), 0u);
        CoreStats loaded;
        EXPECT_TRUE(loadResult(path_, key_, loaded));
        EXPECT_TRUE(statsEqual(stats_, loaded));
    }

    TempResultDir dir_;
    CoreConfig cfg_;
    std::string key_;
    std::string path_;
    CoreStats stats_;
};

TEST_F(ResultStoreFaults, ShortWriteLeavesNoPartialFile)
{
    expectFailedThenCleanPublish("result_store.write=short-write@1x3");
}

TEST_F(ResultStoreFaults, FailedFsyncLeavesNoPartialFile)
{
    expectFailedThenCleanPublish("result_store.fsync=eio@1x3");
}

TEST_F(ResultStoreFaults, FailedRenameLeavesNoPartialFile)
{
    expectFailedThenCleanPublish("result_store.rename=eio@1x3");
}

TEST_F(ResultStoreFaults, TransientWriteFaultIsRetriedToSuccess)
{
    FaultGuard guard;
    FaultRegistry::instance().arm("result_store.write=eio@1");
    EXPECT_GT(saveResult(path_, key_, stats_), 0u);
    EXPECT_GE(FaultRegistry::instance().hitCount("result_store.write"),
              2u);
    EXPECT_EQ(tmpFilesIn(dir_.path), 0);
    CoreStats loaded;
    EXPECT_TRUE(loadResult(path_, key_, loaded));
    EXPECT_TRUE(statsEqual(stats_, loaded));
}

TEST_F(ResultStoreFaults, ReadBackEioIsACacheMissNotACrash)
{
    FaultGuard guard;
    ASSERT_GT(saveResult(path_, key_, stats_), 0u);
    FaultRegistry::instance().arm("result_store.read=eio@1");
    CoreStats loaded;
    EXPECT_FALSE(loadResult(path_, key_, loaded));
    // The fault was one-shot: the intact file serves the next load.
    EXPECT_TRUE(loadResult(path_, key_, loaded));
    EXPECT_TRUE(statsEqual(stats_, loaded));
}

TEST_F(ResultStoreFaults, RepeatedPublishFailuresDegradeToBypass)
{
    FaultGuard guard;
    FaultRegistry::instance().arm("result_store.write=eio@1x*");
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(saveResult(path_, key_, stats_), 0u);
    EXPECT_TRUE(resultStoreBypassed());

    FaultRegistry::instance().disarm();
    EXPECT_EQ(saveResult(path_, key_, stats_), 0u);
    EXPECT_FALSE(fileExists(path_));

    resetResultStoreHealth();
    EXPECT_GT(saveResult(path_, key_, stats_), 0u);
}

TEST(SweepRunner, CustomBundleCacheAloneDisablesResultCaching)
{
    TempResultDir dir;
    CoreConfig cfg = skylakeConfig();
    std::vector<SweepJob> jobs{SweepJob{"CRC32", cfg, shortTrace()}};

    // A synthetic/custom BundleCache without an explicit ResultCache
    // must not publish to (or read from) the global result store.
    BundleCache own;
    SweepRunner(1, &own).run(jobs);

    int files = 0;
    if (DIR *d = opendir(dir.path.c_str())) {
        while (dirent *e = readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                ++files;
        }
        closedir(d);
    }
    EXPECT_EQ(files, 0);
}

} // namespace
