/**
 * @file
 * Tests for the deterministic fault-injection registry: the
 * NOREBA_FAULTS grammar (trigger, count, 'x*', multi-clause plans),
 * per-site hit counting, the I/O shim's errno mapping, kind
 * degradation at non-I/O sites, and fatal rejection of malformed
 * plans.
 */

#include <cerrno>
#include <string>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/fault.h"

using namespace noreba;

namespace {

/** Disarm the process-global registry on scope exit, pass or fail. */
struct FaultGuard
{
    ~FaultGuard() { FaultRegistry::instance().disarm(); }
};

TEST(FaultRegistry, UnarmedSitesNeverFire)
{
    FaultGuard guard;
    FaultRegistry &reg = FaultRegistry::instance();
    reg.disarm();
    EXPECT_FALSE(reg.armed());
    EXPECT_FALSE(reg.onHit("some.site").fire);
    int err = 0;
    EXPECT_FALSE(ioFaultAt("some.site", &err));
    EXPECT_EQ(err, 0);
}

TEST(FaultRegistry, DefaultClauseFiresOnFirstHitOnly)
{
    FaultGuard guard;
    FaultRegistry &reg = FaultRegistry::instance();
    reg.arm("a.site=throw");
    EXPECT_TRUE(reg.armed());
    FaultAction first = reg.onHit("a.site");
    EXPECT_TRUE(first.fire);
    EXPECT_EQ(first.kind, FaultKind::Throw);
    EXPECT_FALSE(reg.onHit("a.site").fire);
    EXPECT_EQ(reg.hitCount("a.site"), 2u);
}

TEST(FaultRegistry, TriggerAndCountSelectAHitWindow)
{
    FaultGuard guard;
    FaultRegistry &reg = FaultRegistry::instance();
    reg.arm("a.site=throw@3x2");
    EXPECT_FALSE(reg.onHit("a.site").fire); // hit 1
    EXPECT_FALSE(reg.onHit("a.site").fire); // hit 2
    EXPECT_TRUE(reg.onHit("a.site").fire);  // hit 3
    EXPECT_TRUE(reg.onHit("a.site").fire);  // hit 4
    EXPECT_FALSE(reg.onHit("a.site").fire); // hit 5
    EXPECT_EQ(reg.hitCount("a.site"), 5u);
}

TEST(FaultRegistry, StarCountFiresForever)
{
    FaultGuard guard;
    FaultRegistry &reg = FaultRegistry::instance();
    reg.arm("a.site=eio@2x*");
    EXPECT_FALSE(reg.onHit("a.site").fire);
    for (int i = 0; i < 10; ++i) {
        FaultAction a = reg.onHit("a.site");
        EXPECT_TRUE(a.fire);
        EXPECT_EQ(a.kind, FaultKind::Eio);
    }
}

TEST(FaultRegistry, ClausesAndHitCountsArePerSite)
{
    FaultGuard guard;
    FaultRegistry &reg = FaultRegistry::instance();
    reg.arm("a.site=throw;b.site=delay@2");
    EXPECT_TRUE(reg.onHit("a.site").fire);
    // b's counter is independent of a's two hits.
    EXPECT_FALSE(reg.onHit("b.site").fire);
    FaultAction b = reg.onHit("b.site");
    EXPECT_TRUE(b.fire);
    EXPECT_EQ(b.kind, FaultKind::Delay);
    EXPECT_FALSE(reg.onHit("unarmed.site").fire);
    EXPECT_EQ(reg.hitCount("a.site"), 1u);
    EXPECT_EQ(reg.hitCount("b.site"), 2u);
    EXPECT_EQ(reg.hitCount("unarmed.site"), 1u);
}

TEST(FaultRegistry, DisarmResetsHitCounters)
{
    FaultGuard guard;
    FaultRegistry &reg = FaultRegistry::instance();
    reg.arm("a.site=throw@2");
    EXPECT_FALSE(reg.onHit("a.site").fire);
    reg.disarm();
    EXPECT_EQ(reg.hitCount("a.site"), 0u);
    // Re-arming starts counting from scratch: the trigger is exact.
    reg.arm("a.site=throw@2");
    EXPECT_FALSE(reg.onHit("a.site").fire);
    EXPECT_TRUE(reg.onHit("a.site").fire);
}

TEST(FaultRegistry, ExecuteThrowsInjectedFaultNamingTheSite)
{
    FaultGuard guard;
    FaultRegistry &reg = FaultRegistry::instance();
    reg.arm("a.site=throw");
    try {
        NOREBA_FAULT_SITE("a.site");
        FAIL() << "expected InjectedFault";
    } catch (const InjectedFault &e) {
        EXPECT_EQ(e.site(), std::string("a.site"));
        EXPECT_NE(std::string(e.what()).find("a.site"), std::string::npos);
    }
    // The clause is spent: the site is now a no-op.
    NOREBA_FAULT_SITE("a.site");
}

TEST(FaultRegistry, IoKindsDegradeToThrowAtNonIoSites)
{
    FaultGuard guard;
    FaultRegistry::instance().arm("a.site=short-write");
    EXPECT_THROW(NOREBA_FAULT_SITE("a.site"), InjectedFault);
}

TEST(IoFaultAt, MapsKindsToErrno)
{
    FaultGuard guard;
    FaultRegistry &reg = FaultRegistry::instance();
    reg.arm("io.site=eio");
    int err = 0;
    EXPECT_TRUE(ioFaultAt("io.site", &err));
    EXPECT_EQ(err, EIO);
    EXPECT_FALSE(ioFaultAt("io.site", &err)); // clause spent

    reg.arm("io.site=short-write");
    err = 0;
    EXPECT_TRUE(ioFaultAt("io.site", &err));
    EXPECT_EQ(err, ENOSPC);
}

TEST(IoFaultAt, ThrowClausesExecuteInPlace)
{
    FaultGuard guard;
    FaultRegistry::instance().arm("io.site=throw");
    int err = 0;
    EXPECT_THROW(ioFaultAt("io.site", &err), InjectedFault);
    EXPECT_EQ(err, 0);
}

TEST(IoFaultAt, DelayClausesReturnFalse)
{
    FaultGuard guard;
    FaultRegistry::instance().arm("io.site=delay");
    int err = 0;
    // The sleep happens in place; the I/O proceeds normally after.
    EXPECT_FALSE(ioFaultAt("io.site", &err));
    EXPECT_EQ(err, 0);
}

TEST(FaultRegistryDeath, MalformedPlansAreFatal)
{
    EXPECT_EXIT(FaultRegistry::instance().arm("nokind"),
                ::testing::ExitedWithCode(1), "NOREBA_FAULTS");
    EXPECT_EXIT(FaultRegistry::instance().arm("a.site=frobnicate"),
                ::testing::ExitedWithCode(1), "NOREBA_FAULTS");
    EXPECT_EXIT(FaultRegistry::instance().arm("a.site=throw@zero"),
                ::testing::ExitedWithCode(1), "NOREBA_FAULTS");
    EXPECT_EXIT(FaultRegistry::instance().arm("a.site=throw@0"),
                ::testing::ExitedWithCode(1), "NOREBA_FAULTS");
    EXPECT_EXIT(FaultRegistry::instance().arm("a.site=throwx2y"),
                ::testing::ExitedWithCode(1), "NOREBA_FAULTS");
    EXPECT_EXIT(FaultRegistry::instance().arm("=throw"),
                ::testing::ExitedWithCode(1), "NOREBA_FAULTS");
}

} // namespace
