/**
 * @file
 * Tests for the static annotation checker (src/analysis).
 *
 * Three angles:
 *
 *  1. Agreement on correct input: every registered workload — raw and
 *     after the compiler pass — lints clean (no errors, no warnings).
 *  2. Independence of the reimplementation: the set-dataflow DomSets
 *     must compute the same immediate dominators as the production
 *     Cooper-Harvey-Kennedy DominatorTree on every workload CFG.
 *  3. Sensitivity to corrupted input: a catalogue of distinct
 *     hand-crafted corruptions of a known-good annotated program, each
 *     of which the checker/verifier must reject with the expected rule
 *     and surface as a machine-readable finding.
 *
 * The corruption fixture is a small loop with a conditional arm that
 * carries a value across iterations through both a register and a
 * store/load pair, so the pass emits a representative annotation:
 *
 *   loop:  setDependency 2 2 ; and ; setBranchId 1 ; bne -> then
 *   then:  setDependency 3 1 ; add ; sd ; jal -> latch
 *   latch: setDependency 2 1 ; ld ; add
 *          setDependency 1 2 ; add ; setBranchId 2 ; blt -> loop
 */

#include <gtest/gtest.h>

#include "analysis/annotation_checker.h"
#include "analysis/diagnostics.h"
#include "analysis/verifier.h"
#include "compiler/branch_dep.h"
#include "ir/builder.h"
#include "ir/dominance.h"
#include "isa/setup_encoding.h"
#include "workloads/workloads.h"

namespace noreba {
namespace {

Diagnostics
lint(const Program &prog, bool requireAnnotations = true)
{
    Diagnostics diag(prog.name());
    verifyProgram(prog, diag);
    CheckOptions opts;
    opts.requireAnnotations = requireAnnotations;
    checkAnnotations(prog, diag, opts);
    return diag;
}

/** Every corruption must produce an error carrying `rule`, and the
 *  finding must round-trip through the JSON report. */
void
expectRejected(const Program &prog, const std::string &rule)
{
    Diagnostics diag = lint(prog);
    EXPECT_GT(diag.errorCount(), 0) << diag.toText();
    EXPECT_TRUE(diag.hasRule(rule)) << "expected rule " << rule << "\n"
                                    << diag.toText();
    EXPECT_NE(diag.toJson().dump(2).find(rule), std::string::npos);
}

TEST(AnnotationChecker, CleanOnAllWorkloads)
{
    for (const std::string &name : workloadNames()) {
        {
            Program prog = buildWorkload(name);
            Diagnostics diag = lint(prog, false);
            EXPECT_EQ(diag.errorCount(), 0) << diag.toText();
            EXPECT_EQ(diag.warningCount(), 0) << diag.toText();
        }
        {
            Program prog = buildWorkload(name);
            runBranchDependencePass(prog);
            Diagnostics diag = lint(prog);
            EXPECT_EQ(diag.errorCount(), 0) << diag.toText();
            EXPECT_EQ(diag.warningCount(), 0) << diag.toText();
        }
    }
}

TEST(AnnotationChecker, DomSetsAgreeWithDominatorTree)
{
    for (const std::string &name : workloadNames()) {
        Program prog = buildWorkload(name);
        const Function &fn = prog.function();
        int n = static_cast<int>(fn.numBlocks());

        DominatorTree dom(fn, DominatorTree::Kind::Dominators);
        DomSets sdom(fn, /*post=*/false);
        DominatorTree pdom(fn, DominatorTree::Kind::PostDominators);
        DomSets spdom(fn, /*post=*/true);

        for (int b = 0; b < n; ++b) {
            EXPECT_EQ(sdom.idom(b), dom.idom(b))
                << name << " idom of bb" << b;
            EXPECT_EQ(spdom.idom(b), pdom.idom(b))
                << name << " pidom of bb" << b;
            for (int a = 0; a < n; ++a) {
                EXPECT_EQ(sdom.dominates(a, b), dom.dominates(a, b))
                    << name << " dom " << a << " " << b;
                EXPECT_EQ(spdom.dominates(a, b), pdom.dominates(a, b))
                    << name << " pdom " << a << " " << b;
            }
        }
    }
}

//
// Corruption catalogue. Block/instruction positions below match the
// annotated fixture layout shown in the file header; the
// FixtureLintsClean test pins that layout so a pass change that moves
// it fails loudly here rather than silently skewing the mutations.
//
constexpr int BB_ENTRY = 0, BB_LOOP = 1, BB_THEN = 2, BB_LATCH = 3;

Program
fixture()
{
    Program prog("fixture");
    uint64_t scratch = prog.allocGlobal(64);
    const AliasRegion R = 1;
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int loop = b.newBlock("loop");
    int thenB = b.newBlock("then");
    int latch = b.newBlock("latch");
    int exit = b.newBlock("exit");
    b.at(entry)
        .li(S2, static_cast<int64_t>(scratch))
        .li(S3, 0)
        .li(S4, 100)
        .li(S5, 0)
        .li(S6, 1)
        .fallthrough(loop);
    b.at(loop).andi(T0, S3, 1).bne(T0, ZERO, thenB, latch);
    b.at(thenB).add(S5, S5, S6).sd(S5, S2, 0, R).jump(latch);
    b.at(latch)
        .ld(T1, S2, 0, R)
        .add(S6, S6, T1)
        .addi(S3, S3, 1)
        .blt(S3, S4, loop, exit);
    b.at(exit).halt();
    prog.finalize();
    return prog;
}

Program
annotatedFixture()
{
    Program prog = fixture();
    runBranchDependencePass(prog);
    return prog;
}

TEST(AnnotationChecker, FixtureLintsClean)
{
    Program prog = annotatedFixture();
    Diagnostics diag = lint(prog);
    EXPECT_EQ(diag.errorCount(), 0) << diag.toText();
    EXPECT_EQ(diag.warningCount(), 0) << diag.toText();

    // Pin the layout the corruptions below index into.
    const Function &fn = prog.function();
    ASSERT_EQ(fn.block(BB_LOOP).insts[0].op, Opcode::SET_DEPENDENCY);
    ASSERT_EQ(fn.block(BB_LOOP).insts[2].op, Opcode::SET_BRANCH_ID);
    ASSERT_EQ(fn.block(BB_THEN).insts[0].op, Opcode::SET_DEPENDENCY);
    ASSERT_EQ(setDependencyId(fn.block(BB_THEN).insts[0]), 1);
    ASSERT_EQ(fn.block(BB_LATCH).insts[0].op, Opcode::SET_DEPENDENCY);
    ASSERT_EQ(setDependencyId(fn.block(BB_LATCH).insts[0]), 1);
    ASSERT_EQ(setDependencyNum(fn.block(BB_LATCH).insts[0]), 2);
    ASSERT_TRUE(setDependencySensitive(fn.block(BB_LATCH).insts[0]));
    ASSERT_EQ(fn.block(BB_LATCH).insts[3].op, Opcode::SET_DEPENDENCY);
    ASSERT_EQ(fn.block(BB_LATCH).insts[5].op, Opcode::SET_BRANCH_ID);
}

// 1. A region whose covered instructions consume cross-instance flows
//    loses its order-sensitive bit.
TEST(AnnotationChecker, RejectsClearedOrderSensitiveBit)
{
    Program prog = annotatedFixture();
    Instruction &dep = prog.function().block(BB_LATCH).insts[0];
    dep = makeSetDependency(setDependencyNum(dep), setDependencyId(dep),
                            /*orderSensitive=*/false);
    expectRejected(prog, "missing-order-sensitive");
}

// 2. A region is retargeted at an ID no branch is ever armed with.
TEST(AnnotationChecker, RejectsNeverArmedGuardId)
{
    Program prog = annotatedFixture();
    Instruction &dep = prog.function().block(BB_LATCH).insts[0];
    dep = makeSetDependency(setDependencyNum(dep), 5, true);
    expectRejected(prog, "dead-guard");
}

// 3. A guarding region is dropped entirely, leaving its dependent
//    instructions uncovered.
TEST(AnnotationChecker, RejectsDroppedRegion)
{
    Program prog = annotatedFixture();
    auto &insts = prog.function().block(BB_LATCH).insts;
    insts.erase(insts.begin());
    expectRejected(prog, "uncovered-dependence");
}

// 4. A region is shortened so its last dependent instruction escapes.
TEST(AnnotationChecker, RejectsShortenedRegion)
{
    Program prog = annotatedFixture();
    Instruction &dep = prog.function().block(BB_LATCH).insts[0];
    dep = makeSetDependency(setDependencyNum(dep) - 1,
                            setDependencyId(dep), true);
    expectRejected(prog, "uncovered-dependence");
}

// 5. A region claims more instructions than remain in its block.
TEST(AnnotationChecker, RejectsRegionPastBlockEnd)
{
    Program prog = annotatedFixture();
    Instruction &dep = prog.function().block(BB_LATCH).insts[3];
    dep = makeSetDependency(5, setDependencyId(dep), true);
    expectRejected(prog, "setup-dep-extent");
}

// 6. The arming of an ID is removed while regions still reference it.
TEST(AnnotationChecker, RejectsRemovedArming)
{
    Program prog = annotatedFixture();
    auto &insts = prog.function().block(BB_LOOP).insts;
    ASSERT_EQ(insts[2].op, Opcode::SET_BRANCH_ID);
    insts.erase(insts.begin() + 2);
    expectRejected(prog, "dead-guard");
}

// 7. A setBranchId arms a non-branch instruction.
TEST(AnnotationChecker, RejectsMisplacedSetBranchId)
{
    Program prog = annotatedFixture();
    auto &insts = prog.function().block(BB_ENTRY).insts;
    insts.insert(insts.begin(), makeSetBranchId(3));
    expectRejected(prog, "setup-misplaced-branch-id");
}

// 8. A setDependency names an ID outside the 3-bit hardware table.
TEST(AnnotationChecker, RejectsOutOfRangeId)
{
    Program prog = annotatedFixture();
    Instruction &dep = prog.function().block(BB_LOOP).insts[0];
    dep = makeSetDependency(setDependencyNum(dep), 9, true);
    expectRejected(prog, "setup-id-range");
}

// 9. Two dependency regions overlap in one block.
TEST(AnnotationChecker, RejectsOverlappingRegions)
{
    Program prog = annotatedFixture();
    auto &insts = prog.function().block(BB_LATCH).insts;
    insts.insert(insts.begin() + 1, makeSetDependency(1, 2, true));
    expectRejected(prog, "setup-dep-overlap");
}

// 10. A region covers zero instructions.
TEST(AnnotationChecker, RejectsEmptyRegion)
{
    Program prog = annotatedFixture();
    Instruction &dep = prog.function().block(BB_LOOP).insts[0];
    dep = makeSetDependency(0, setDependencyId(dep), true);
    expectRejected(prog, "setup-dep-empty");
}

// 11. ID 0 ("no dependency") without the strict bit on instructions
//     that do have dependences: nothing would ever gate their commit.
TEST(AnnotationChecker, RejectsLaxIdZeroRegion)
{
    Program prog = annotatedFixture();
    Instruction &dep = prog.function().block(BB_LATCH).insts[0];
    dep = makeSetDependency(setDependencyNum(dep), 0, true,
                            /*orderStrict=*/false);
    Diagnostics diag = lint(prog);
    EXPECT_GT(diag.errorCount(), 0) << diag.toText();
    EXPECT_TRUE(diag.hasRule("dead-guard")) << diag.toText();
    EXPECT_TRUE(diag.hasRule("setup-dep-id0-lax")) << diag.toText();
}

// 12. A guard is swapped onto the other armed ID: the chain from that
//     branch no longer reaches the store's controlling branch.
TEST(AnnotationChecker, RejectsSwappedGuardId)
{
    Program prog = annotatedFixture();
    Instruction &dep = prog.function().block(BB_THEN).insts[0];
    dep = makeSetDependency(setDependencyNum(dep), 2, true);
    expectRejected(prog, "uncovered-dependence");
}

// 13. A terminator's successor list is corrupted.
TEST(AnnotationChecker, RejectsCorruptedSuccessors)
{
    Program prog = annotatedFixture();
    prog.function().block(BB_LATCH).succs.push_back(BB_THEN);
    expectRejected(prog, "cfg-stale-edges");
}

} // namespace
} // namespace noreba
