/**
 * @file
 * Parameterized cross-policy integration tests over a representative
 * workload subset: completion invariants, the performance orderings
 * that Figures 1/6 depend on, and per-policy sanity bounds.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/runner.h"
#include "uarch/branch_predictor.h"

namespace noreba {
namespace {

struct PreparedWorkload
{
    TraceBundle bundle;
    std::map<CommitMode, CoreStats> stats;
};

const std::vector<std::string> &
subset()
{
    static const std::vector<std::string> names = {
        "mcf", "CRC32", "bzip2", "dijkstra", "libquantum", "astar"};
    return names;
}

const PreparedWorkload &
preparedFor(const std::string &name)
{
    static std::map<std::string, PreparedWorkload> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        PreparedWorkload pw;
        TraceOptions opts;
        opts.maxDynInsts = 60000;
        pw.bundle = prepareTrace(name, opts);
        for (CommitMode mode :
             {CommitMode::InOrder, CommitMode::NonSpecOoO,
              CommitMode::Noreba, CommitMode::IdealReconv,
              CommitMode::SpeculativeBR, CommitMode::SpeculativeFull}) {
            CoreConfig cfg = skylakeConfig();
            cfg.commitMode = mode;
            pw.stats[mode] = simulate(cfg, pw.bundle);
        }
        it = cache.emplace(name, std::move(pw)).first;
    }
    return it->second;
}

class PolicySuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PolicySuite, EveryPolicyRetiresTheWholeTrace)
{
    const PreparedWorkload &pw = preparedFor(GetParam());
    for (const auto &[mode, s] : pw.stats) {
        EXPECT_EQ(s.committedInsts, pw.bundle.trace.dynInsts)
            << commitModeName(mode);
        EXPECT_GT(s.cycles, 0u);
    }
}

TEST_P(PolicySuite, InOrderIsTheSlowestNonTrivially)
{
    const PreparedWorkload &pw = preparedFor(GetParam());
    uint64_t ino = pw.stats.at(CommitMode::InOrder).cycles;
    for (const auto &[mode, s] : pw.stats) {
        // Allow 2% model noise (store-retirement timing differs).
        EXPECT_LE(s.cycles, ino + ino / 50) << commitModeName(mode);
    }
}

TEST_P(PolicySuite, NorebaBoundedByIdealReconvergence)
{
    const PreparedWorkload &pw = preparedFor(GetParam());
    uint64_t nor = pw.stats.at(CommitMode::Noreba).cycles;
    uint64_t ideal = pw.stats.at(CommitMode::IdealReconv).cycles;
    EXPECT_GE(nor + nor / 50, ideal);
}

TEST_P(PolicySuite, SpeculativeOraclesAreUpperBounds)
{
    const PreparedWorkload &pw = preparedFor(GetParam());
    uint64_t ideal = pw.stats.at(CommitMode::IdealReconv).cycles;
    uint64_t specBr = pw.stats.at(CommitMode::SpeculativeBR).cycles;
    uint64_t specFull =
        pw.stats.at(CommitMode::SpeculativeFull).cycles;
    EXPECT_LE(specBr, ideal + ideal / 50);
    EXPECT_LE(specFull, specBr + specBr / 50);
}

TEST_P(PolicySuite, OnlyInOrderHasZeroOooCommits)
{
    const PreparedWorkload &pw = preparedFor(GetParam());
    EXPECT_EQ(pw.stats.at(CommitMode::InOrder).committedOoO, 0u);
    double frac =
        pw.stats.at(CommitMode::Noreba).oooCommitFraction();
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
}

TEST_P(PolicySuite, BranchStreamIsPolicyIndependent)
{
    // All policies replay the same trace and predictor verdicts: the
    // misprediction count may differ only through squash re-fetches.
    const PreparedWorkload &pw = preparedFor(GetParam());
    PredictorStats ps =
        summarizeMispredictions(pw.bundle.trace, pw.bundle.misp);
    for (const auto &[mode, s] : pw.stats) {
        EXPECT_GE(s.mispredicts, ps.mispredicts / 2)
            << commitModeName(mode);
    }
}

TEST_P(PolicySuite, StatsAreInternallyConsistent)
{
    const PreparedWorkload &pw = preparedFor(GetParam());
    for (const auto &[mode, s] : pw.stats) {
        EXPECT_GE(s.fetched, s.dispatched) << commitModeName(mode);
        EXPECT_GE(s.dispatched, s.committedInsts)
            << commitModeName(mode);
        EXPECT_GE(s.issued, s.committedInsts - s.squashedInsts - 1)
            << commitModeName(mode);
        EXPECT_LE(s.committedOoO, s.committedInsts);
    }
}

INSTANTIATE_TEST_SUITE_P(RepresentativeWorkloads, PolicySuite,
                         ::testing::ValuesIn(subset()));

/** Core-size sweep (Table 3): bigger cores never lose performance. */
class CoreSizeSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CoreSizeSuite, LargerCoresAreFasterForNoreba)
{
    TraceOptions opts;
    opts.maxDynInsts = 50000;
    TraceBundle bundle = prepareTrace("mcf", opts);
    CoreConfig cfg = configByName(GetParam());
    cfg.commitMode = CommitMode::Noreba;
    CoreStats s = simulate(cfg, bundle);

    CoreConfig nhm = nehalemConfig();
    nhm.commitMode = CommitMode::Noreba;
    CoreStats base = simulate(nhm, bundle);
    EXPECT_LE(s.cycles, base.cycles + base.cycles / 50) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreSizeSuite,
                         ::testing::Values("NHM", "HSW", "SKL"));

} // namespace
} // namespace noreba
