/**
 * @file
 * Tests for the textual IR assembler: parsing, data directives,
 * error reporting, printer round-trips, and end-to-end execution of
 * assembled programs through the pass and the core.
 */

#include <gtest/gtest.h>

#include "compiler/branch_dep.h"
#include "interp/interpreter.h"
#include "ir/assembler.h"
#include "test_util.h"

namespace noreba {
namespace {

TEST(Assembler, MinimalProgram)
{
    AssembleResult r = assemble(R"(
        entry:
            li   t0, 7
            addi t0, t0, 35
            halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    Interpreter interp(r.program);
    interp.run();
    EXPECT_EQ(interp.intReg(T0), 42);
}

TEST(Assembler, LoopWithBranch)
{
    AssembleResult r = assemble(R"(
        ; sum 1..10
        entry:
            li t0, 0
            li t1, 0
            li t2, 10
        loop:
            addi t1, t1, 1
            add  t0, t0, t1
            blt  t1, t2, loop, done
        done:
            halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    Interpreter interp(r.program);
    interp.run();
    EXPECT_EQ(interp.intReg(T0), 55);
}

TEST(Assembler, ImplicitFallthroughAndDefaultBranchTarget)
{
    AssembleResult r = assemble(R"(
        entry:
            li t0, 1
        check:
            beq t0, zero, done
        body:
            li t1, 9
        done:
            halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    Interpreter interp(r.program);
    interp.run();
    EXPECT_EQ(interp.intReg(T1), 9); // branch not taken -> body runs
}

TEST(Assembler, DataDirectivesAndMemory)
{
    AssembleResult r = assemble(R"(
        .data buf 64
        .region buf 1
        .word buf+8 1234
        entry:
            la t0, buf
            ld t1, 8(t0)
            addi t1, t1, 1
            sd t1, 16(t0)
            ld t2, 16(t0)
            halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    Interpreter interp(r.program);
    interp.run();
    EXPECT_EQ(interp.intReg(T2), 1235);

    // Region annotation propagated to the memory instructions.
    bool sawRegion = false;
    for (const auto &bb : r.program.function().blocks())
        for (const auto &inst : bb.insts)
            if (isMem(inst.op))
                sawRegion |= inst.aliasRegion == 1;
    EXPECT_TRUE(sawRegion);
}

TEST(Assembler, FloatingPoint)
{
    AssembleResult r = assemble(R"(
        entry:
            li t0, 9
            fcvt.d.l f0, t0
            fsqrt    f1, f0
            fadd     f2, f1, f1
            fcvt.l.d t1, f2
            halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    Interpreter interp(r.program);
    interp.run();
    EXPECT_EQ(interp.intReg(T1), 6);
}

TEST(Assembler, SetupInstructions)
{
    AssembleResult r = assemble(R"(
        entry:
            li t0, 1
            setBranchId 3
            beq t0, zero, skip, body
        body:
            setDependency 2 3
            addi t1, t1, 1
            addi t2, t2, 1
        skip:
            halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    DynamicTrace trace = Interpreter(r.program).run();
    int guarded = 0;
    for (const auto &rec : trace.records)
        guarded += rec.guardIdx != TRACE_NONE;
    EXPECT_EQ(guarded, 2);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    AssembleResult r = assemble("entry:\n    bogus t0, t1\n    halt\n");
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("line 2"), std::string::npos);
    EXPECT_NE(r.error.find("bogus"), std::string::npos);

    AssembleResult r2 = assemble("entry:\n    blt t0, t1, nowhere\n");
    EXPECT_FALSE(r2.ok());

    AssembleResult r3 = assemble("    li t0, 1\n");
    EXPECT_FALSE(r3.ok()); // no label

    AssembleResult r4 = assemble("a:\n halt\na:\n halt\n");
    EXPECT_FALSE(r4.ok()); // duplicate label
}

TEST(Assembler, ErrorsCarryLabelAndSourceContext)
{
    // The failing line is echoed and the enclosing block is named.
    AssembleResult r =
        assemble("entry:\n    halt\nloop:\n    bogus t0, t1\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("'loop'"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("    bogus t0, t1"), std::string::npos)
        << r.error;

    // Directive errors echo the line but precede any label.
    AssembleResult r2 = assemble(".data\nentry:\n    halt\n");
    ASSERT_FALSE(r2.ok());
    EXPECT_NE(r2.error.find("line 1"), std::string::npos) << r2.error;
    EXPECT_NE(r2.error.find(".data"), std::string::npos) << r2.error;
    EXPECT_EQ(r2.error.find("(in"), std::string::npos) << r2.error;

    // Unknown-label errors name the block being assembled.
    AssembleResult r3 =
        assemble("entry:\n    blt t0, t1, nowhere\n");
    ASSERT_FALSE(r3.ok());
    EXPECT_NE(r3.error.find("'entry'"), std::string::npos) << r3.error;
    EXPECT_NE(r3.error.find("nowhere"), std::string::npos) << r3.error;
}

TEST(Assembler, RoundTripsThroughThePrinter)
{
    AssembleResult first = assemble(R"(
        .data tab 128
        .region tab 2
        entry:
            la  s2, tab
            li  t0, 0
            li  t1, 12
        loop:
            sll t2, t0, 3
            add t2, s2, t2
            sd  t0, 0(t2)
            addi t0, t0, 1
            blt t0, t1, loop, done
        done:
            halt
    )");
    ASSERT_TRUE(first.ok()) << first.error;

    // Print and re-assemble; results must match architecturally.
    std::string printed = first.program.function().toString();
    // Drop the "function ..." header line; the rest parses directly.
    printed = printed.substr(printed.find('\n') + 1);
    AssembleResult second = assemble(printed);
    ASSERT_TRUE(second.ok()) << second.error << "\n" << printed;

    Interpreter a(first.program);
    a.run();
    // Re-seed the second program's data (the printer does not carry
    // data segments, so poke the same contents).
    for (const auto &seg : first.program.dataSegments())
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            ; // second program reads zeroes; compare register effects
    Interpreter b(second.program);
    b.run();
    // The loop writes t0's final value regardless of data contents.
    EXPECT_EQ(a.intReg(T0), b.intReg(T0));
    EXPECT_EQ(first.program.function().numInsts(),
              second.program.function().numInsts());
}

TEST(Assembler, AssembledProgramRunsThroughTheWholeStack)
{
    AssembleResult r = assemble(R"(
        .data table 32768
        .region table 1
        entry:
            la s2, table
            li s3, 0
            li s4, 4000
            li s7, 4095
        loop:
            and  t0, s3, s7
            sll  t0, t0, 3
            add  t0, s2, t0
            ld   t1, 0(t0)
            andi t2, t1, 3
            beq  t2, zero, rare, next
        rare:
            add  s5, s5, t1
        next:
            addi s6, s6, 1
            addi s3, s3, 1
            blt  s3, s4, loop, done
        done:
            halt
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    PassResult pass = runBranchDependencePass(r.program);
    EXPECT_GE(pass.numMarkedBranches, 1);

    testutil::Prepared p = testutil::prepare(r.program);
    CoreStats ino = testutil::run(p, CommitMode::InOrder);
    CoreStats nor = testutil::run(p, CommitMode::Noreba);
    EXPECT_EQ(ino.committedInsts, p.trace.dynInsts);
    EXPECT_EQ(nor.committedInsts, p.trace.dynInsts);
}

} // namespace
} // namespace noreba
