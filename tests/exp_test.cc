/**
 * @file
 * Tests for the declarative experiment layer: plan handle uniqueness,
 * result lookup by (row, series), the registry's ordering and
 * duplicate-name guard, the driver's run/report wiring (including the
 * first-job event capture that replaced the old re-simulation), and
 * the environment knobs shared by every experiment — in particular
 * that an unknown NOREBA_WORKLOADS entry fails fast listing *every*
 * unknown name.
 */

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/driver.h"
#include "exp/env.h"
#include "exp/experiment.h"
#include "experiments.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "uarch/config.h"

using namespace noreba;
using namespace noreba::bench;

namespace {

constexpr uint64_t TEST_TRACE_LEN = 20000;

SweepJob
testJob(const std::string &workload, CommitMode mode)
{
    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = mode;
    TraceOptions opts;
    opts.maxDynInsts = TEST_TRACE_LEN;
    return SweepJob{workload, cfg, opts};
}

TEST(ExperimentPlan, KeepsSubmissionOrderAndRejectsDuplicateHandles)
{
    ExperimentPlan plan;
    plan.add("mcf", "InO-C", testJob("mcf", CommitMode::InOrder));
    plan.add("mcf", "Noreba", testJob("mcf", CommitMode::Noreba));
    plan.add("CRC32", "InO-C", testJob("CRC32", CommitMode::InOrder));

    ASSERT_EQ(plan.planned().size(), 3u);
    EXPECT_EQ(plan.planned()[0].row, "mcf");
    EXPECT_EQ(plan.planned()[0].series, "InO-C");
    EXPECT_EQ(plan.planned()[2].row, "CRC32");
    EXPECT_EQ(plan.planned()[2].job.workload, "CRC32");

    EXPECT_DEATH(plan.add("mcf", "InO-C",
                          testJob("mcf", CommitMode::InOrder)),
                 "duplicate");
}

TEST(ExperimentResults, LooksUpByHandleAndDiesOnUnknownOnes)
{
    ExperimentPlan plan;
    plan.add("mcf", "InO-C", testJob("mcf", CommitMode::InOrder));
    plan.add("mcf", "Noreba", testJob("mcf", CommitMode::Noreba));

    std::vector<SweepResult> sweep(2);
    sweep[0].job = plan.planned()[0].job;
    sweep[0].stats.cycles = 100;
    sweep[1].job = plan.planned()[1].job;
    sweep[1].stats.cycles = 60;

    ExperimentResults r(plan.planned(), sweep);
    EXPECT_EQ(r.at("mcf", "InO-C").cycles, 100u);
    EXPECT_EQ(r.at("mcf", "Noreba").cycles, 60u);
    EXPECT_EQ(r.jobAt("mcf", "Noreba").cfg.commitMode,
              CommitMode::Noreba);
    EXPECT_TRUE(r.has("mcf", "InO-C"));
    EXPECT_FALSE(r.has("mcf", "SpeculativeFull"));
    EXPECT_EQ(r.raw().size(), 2u);

    EXPECT_DEATH(r.at("mcf", "SpeculativeFull"), "mcf");
    EXPECT_DEATH(r.jobAt("bzip2", "InO-C"), "bzip2");
}

TEST(ExperimentResults, RejectsPlanResultSizeMismatch)
{
    ExperimentPlan plan;
    plan.add("mcf", "InO-C", testJob("mcf", CommitMode::InOrder));
    std::vector<SweepResult> sweep; // empty: one job planned, none run
    EXPECT_DEATH(ExperimentResults(plan.planned(), sweep), "");
}

TEST(ExperimentRegistry, RegistersInOrderAndRejectsDuplicateNames)
{
    // The registry is process-global; use names no real experiment
    // claims. (gtest death tests fork, so the EXPECT_DEATH below does
    // not pollute this process's registry.)
    const size_t before = experimentRegistry().size();

    ExperimentSpec a;
    a.name = "exp_test_alpha";
    a.title = "Alpha";
    registerExperiment(a);
    ExperimentSpec b;
    b.name = "exp_test_beta";
    b.title = "Beta";
    registerExperiment(b);

    ASSERT_EQ(experimentRegistry().size(), before + 2);
    EXPECT_EQ(experimentRegistry()[before].name, "exp_test_alpha");
    EXPECT_EQ(experimentRegistry()[before + 1].name, "exp_test_beta");

    const ExperimentSpec *found = findExperiment("exp_test_beta");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->title, "Beta");
    EXPECT_EQ(findExperiment("exp_test_nope"), nullptr);

    ExperimentSpec dup;
    dup.name = "exp_test_alpha";
    EXPECT_DEATH(registerExperiment(dup), "exp_test_alpha");
}

TEST(Driver, RunExperimentExecutesPlanAndHandsResultsToReport)
{
    setenv("NOREBA_TRACE_LEN", "20000", 1);
    unsetenv("NOREBA_JSON_DIR");
    unsetenv("NOREBA_EVENT_TRACE");

    ExperimentSpec spec;
    spec.name = "exp_test_driver";
    spec.title = "Driver wiring";
    spec.description = "two modes on one workload";
    spec.plan = [](ExperimentPlan &plan) {
        plan.add("CRC32", "InO-C", testJob("CRC32", CommitMode::InOrder));
        plan.add("CRC32", "Noreba", testJob("CRC32", CommitMode::Noreba));
    };
    int reported = 0;
    spec.report = [&](const ExperimentResults &r) {
        ++reported;
        EXPECT_GT(r.at("CRC32", "InO-C").cycles, 0u);
        EXPECT_GT(r.at("CRC32", "Noreba").committedInsts, 0u);
        // Real simulations, not placeholders: Noreba commits OoO.
        EXPECT_GT(r.at("CRC32", "Noreba").committedOoO, 0u);
        EXPECT_EQ(r.at("CRC32", "InO-C").committedOoO, 0u);
    };
    runExperiment(spec);
    EXPECT_EQ(reported, 1);
    unsetenv("NOREBA_TRACE_LEN");
}

TEST(Env, TraceLenDefaultsAndRejectsGarbage)
{
    unsetenv("NOREBA_TRACE_LEN");
    EXPECT_EQ(benchutil::traceLen(), 250000u);
    setenv("NOREBA_TRACE_LEN", "12345", 1);
    EXPECT_EQ(benchutil::traceLen(), 12345u);
    setenv("NOREBA_TRACE_LEN", "lots", 1);
    EXPECT_EXIT(benchutil::traceLen(), ::testing::ExitedWithCode(1), "");
    setenv("NOREBA_TRACE_LEN", "0", 1);
    EXPECT_EXIT(benchutil::traceLen(), ::testing::ExitedWithCode(1), "");
    unsetenv("NOREBA_TRACE_LEN");
}

TEST(Env, SelectedWorkloadsHonoursSubsetAndListsAllUnknownNames)
{
    unsetenv("NOREBA_WORKLOADS");
    const std::vector<std::string> all = benchutil::selectedWorkloads();
    EXPECT_GT(all.size(), 8u);

    setenv("NOREBA_WORKLOADS", "mcf,CRC32", 1);
    const std::vector<std::string> subset =
        benchutil::selectedWorkloads();
    ASSERT_EQ(subset.size(), 2u);
    EXPECT_EQ(subset[0], "mcf");
    EXPECT_EQ(subset[1], "CRC32");

    // Every unknown name appears in one fatal message — a long
    // hand-typed list is fixed in one round trip.
    setenv("NOREBA_WORKLOADS", "mcf,mfc,crc32,CRC32", 1);
    EXPECT_EXIT(benchutil::selectedWorkloads(),
                ::testing::ExitedWithCode(1), "mfc.*crc32");
    unsetenv("NOREBA_WORKLOADS");
}

TEST(Env, JobCarriesTraceLenAndEventTraceKnobs)
{
    setenv("NOREBA_TRACE_LEN", "20000", 1);
    unsetenv("NOREBA_EVENT_TRACE");
    SweepJob off = benchutil::job("CRC32", skylakeConfig());
    EXPECT_EQ(off.workload, "CRC32");
    EXPECT_EQ(off.trace.maxDynInsts, 20000u);
    EXPECT_TRUE(off.trace.annotate);
    EXPECT_FALSE(off.cfg.eventTrace);

    setenv("NOREBA_EVENT_TRACE", "1", 1);
    EXPECT_TRUE(benchutil::job("CRC32", skylakeConfig()).cfg.eventTrace);
    setenv("NOREBA_EVENT_TRACE", "0", 1);
    EXPECT_FALSE(
        benchutil::job("CRC32", skylakeConfig()).cfg.eventTrace);
    unsetenv("NOREBA_EVENT_TRACE");

    SweepJob stripped = benchutil::job("mcf", skylakeConfig(), true, true);
    EXPECT_TRUE(stripped.trace.stripSetups);
    unsetenv("NOREBA_TRACE_LEN");
}

TEST(Registrants, AllFifteenPaperExperimentsRegisterUniquely)
{
    // experimentRegistry() already holds whatever earlier tests added;
    // the real registrants must all be present exactly once after
    // registerAllExperiments() — which benchMain() runs via the bench
    // binary. Here we only check the names the CLI contract promises.
    // (Registration itself is covered by the driver smoke in CI.)
    const char *expected[] = {
        "fig01_motivation",      "tab01_events",
        "tab02_03_configs",      "fig06_main",
        "fig07_critical_branches", "fig08_ooo_fraction",
        "fig09_cq_sweep_perf",   "fig10_cq_sweep_power",
        "fig11_setup_overhead",  "fig12_core_sizes",
        "fig13_prefetching",     "fig14_ecl",
        "fig15_commit_width",    "fig16_power_area",
        "ablation_design",
    };
    registerAllExperiments();
    size_t at = 0;
    for (const ExperimentSpec &spec : experimentRegistry()) {
        if (at < std::size(expected) && spec.name == expected[at])
            ++at;
    }
    EXPECT_EQ(at, std::size(expected))
        << "paper experiments missing or out of order";
    for (const char *name : expected) {
        const ExperimentSpec *spec = findExperiment(name);
        ASSERT_NE(spec, nullptr) << name;
        EXPECT_FALSE(spec->title.empty()) << name;
        EXPECT_FALSE(spec->description.empty()) << name;
    }
}

} // namespace
