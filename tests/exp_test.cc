/**
 * @file
 * Tests for the declarative experiment layer: plan handle uniqueness,
 * result lookup by (row, series), the registry's ordering and
 * duplicate-name guard, the driver's run/report wiring (including the
 * first-job event capture that replaced the old re-simulation), and
 * the environment knobs shared by every experiment — in particular
 * that an unknown NOREBA_WORKLOADS entry fails fast listing *every*
 * unknown name.
 */

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "exp/checkpoint.h"
#include "exp/driver.h"
#include "exp/env.h"
#include "exp/experiment.h"
#include "experiments.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "uarch/config.h"

using namespace noreba;
using namespace noreba::bench;

namespace {

constexpr uint64_t TEST_TRACE_LEN = 20000;

SweepJob
testJob(const std::string &workload, CommitMode mode)
{
    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = mode;
    TraceOptions opts;
    opts.maxDynInsts = TEST_TRACE_LEN;
    return SweepJob{workload, cfg, opts};
}

TEST(ExperimentPlan, KeepsSubmissionOrderAndRejectsDuplicateHandles)
{
    ExperimentPlan plan;
    plan.add("mcf", "InO-C", testJob("mcf", CommitMode::InOrder));
    plan.add("mcf", "Noreba", testJob("mcf", CommitMode::Noreba));
    plan.add("CRC32", "InO-C", testJob("CRC32", CommitMode::InOrder));

    ASSERT_EQ(plan.planned().size(), 3u);
    EXPECT_EQ(plan.planned()[0].row, "mcf");
    EXPECT_EQ(plan.planned()[0].series, "InO-C");
    EXPECT_EQ(plan.planned()[2].row, "CRC32");
    EXPECT_EQ(plan.planned()[2].job.workload, "CRC32");

    EXPECT_DEATH(plan.add("mcf", "InO-C",
                          testJob("mcf", CommitMode::InOrder)),
                 "duplicate");
}

TEST(ExperimentResults, LooksUpByHandleAndDiesOnUnknownOnes)
{
    ExperimentPlan plan;
    plan.add("mcf", "InO-C", testJob("mcf", CommitMode::InOrder));
    plan.add("mcf", "Noreba", testJob("mcf", CommitMode::Noreba));

    std::vector<SweepResult> sweep(2);
    sweep[0].job = plan.planned()[0].job;
    sweep[0].stats.cycles = 100;
    sweep[1].job = plan.planned()[1].job;
    sweep[1].stats.cycles = 60;

    ExperimentResults r(plan.planned(), sweep);
    EXPECT_EQ(r.at("mcf", "InO-C").cycles, 100u);
    EXPECT_EQ(r.at("mcf", "Noreba").cycles, 60u);
    EXPECT_EQ(r.jobAt("mcf", "Noreba").cfg.commitMode,
              CommitMode::Noreba);
    EXPECT_TRUE(r.has("mcf", "InO-C"));
    EXPECT_FALSE(r.has("mcf", "SpeculativeFull"));
    EXPECT_EQ(r.raw().size(), 2u);

    EXPECT_DEATH(r.at("mcf", "SpeculativeFull"), "mcf");
    EXPECT_DEATH(r.jobAt("bzip2", "InO-C"), "bzip2");
}

TEST(ExperimentResults, RejectsPlanResultSizeMismatch)
{
    ExperimentPlan plan;
    plan.add("mcf", "InO-C", testJob("mcf", CommitMode::InOrder));
    std::vector<SweepResult> sweep; // empty: one job planned, none run
    EXPECT_DEATH(ExperimentResults(plan.planned(), sweep), "");
}

TEST(ExperimentRegistry, RegistersInOrderAndRejectsDuplicateNames)
{
    // The registry is process-global; use names no real experiment
    // claims. (gtest death tests fork, so the EXPECT_DEATH below does
    // not pollute this process's registry.)
    const size_t before = experimentRegistry().size();

    ExperimentSpec a;
    a.name = "exp_test_alpha";
    a.title = "Alpha";
    registerExperiment(a);
    ExperimentSpec b;
    b.name = "exp_test_beta";
    b.title = "Beta";
    registerExperiment(b);

    ASSERT_EQ(experimentRegistry().size(), before + 2);
    EXPECT_EQ(experimentRegistry()[before].name, "exp_test_alpha");
    EXPECT_EQ(experimentRegistry()[before + 1].name, "exp_test_beta");

    const ExperimentSpec *found = findExperiment("exp_test_beta");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->title, "Beta");
    EXPECT_EQ(findExperiment("exp_test_nope"), nullptr);

    ExperimentSpec dup;
    dup.name = "exp_test_alpha";
    EXPECT_DEATH(registerExperiment(dup), "exp_test_alpha");
}

TEST(Driver, RunExperimentExecutesPlanAndHandsResultsToReport)
{
    setenv("NOREBA_TRACE_LEN", "20000", 1);
    unsetenv("NOREBA_JSON_DIR");
    unsetenv("NOREBA_EVENT_TRACE");

    ExperimentSpec spec;
    spec.name = "exp_test_driver";
    spec.title = "Driver wiring";
    spec.description = "two modes on one workload";
    spec.plan = [](ExperimentPlan &plan) {
        plan.add("CRC32", "InO-C", testJob("CRC32", CommitMode::InOrder));
        plan.add("CRC32", "Noreba", testJob("CRC32", CommitMode::Noreba));
    };
    int reported = 0;
    spec.report = [&](const ExperimentResults &r) {
        ++reported;
        EXPECT_GT(r.at("CRC32", "InO-C").cycles, 0u);
        EXPECT_GT(r.at("CRC32", "Noreba").committedInsts, 0u);
        // Real simulations, not placeholders: Noreba commits OoO.
        EXPECT_GT(r.at("CRC32", "Noreba").committedOoO, 0u);
        EXPECT_EQ(r.at("CRC32", "InO-C").committedOoO, 0u);
    };
    runExperiment(spec);
    EXPECT_EQ(reported, 1);
    unsetenv("NOREBA_TRACE_LEN");
}

TEST(Env, TraceLenDefaultsAndRejectsGarbage)
{
    unsetenv("NOREBA_TRACE_LEN");
    EXPECT_EQ(benchutil::traceLen(), 250000u);
    setenv("NOREBA_TRACE_LEN", "12345", 1);
    EXPECT_EQ(benchutil::traceLen(), 12345u);
    setenv("NOREBA_TRACE_LEN", "lots", 1);
    EXPECT_EXIT(benchutil::traceLen(), ::testing::ExitedWithCode(1), "");
    setenv("NOREBA_TRACE_LEN", "0", 1);
    EXPECT_EXIT(benchutil::traceLen(), ::testing::ExitedWithCode(1), "");
    unsetenv("NOREBA_TRACE_LEN");
}

TEST(Env, SelectedWorkloadsHonoursSubsetAndListsAllUnknownNames)
{
    unsetenv("NOREBA_WORKLOADS");
    const std::vector<std::string> all = benchutil::selectedWorkloads();
    EXPECT_GT(all.size(), 8u);

    setenv("NOREBA_WORKLOADS", "mcf,CRC32", 1);
    const std::vector<std::string> subset =
        benchutil::selectedWorkloads();
    ASSERT_EQ(subset.size(), 2u);
    EXPECT_EQ(subset[0], "mcf");
    EXPECT_EQ(subset[1], "CRC32");

    // Every unknown name appears in one fatal message — a long
    // hand-typed list is fixed in one round trip.
    setenv("NOREBA_WORKLOADS", "mcf,mfc,crc32,CRC32", 1);
    EXPECT_EXIT(benchutil::selectedWorkloads(),
                ::testing::ExitedWithCode(1), "mfc.*crc32");
    unsetenv("NOREBA_WORKLOADS");
}

TEST(Env, JobCarriesTraceLenAndEventTraceKnobs)
{
    setenv("NOREBA_TRACE_LEN", "20000", 1);
    unsetenv("NOREBA_EVENT_TRACE");
    SweepJob off = benchutil::job("CRC32", skylakeConfig());
    EXPECT_EQ(off.workload, "CRC32");
    EXPECT_EQ(off.trace.maxDynInsts, 20000u);
    EXPECT_TRUE(off.trace.annotate);
    EXPECT_FALSE(off.cfg.eventTrace);

    setenv("NOREBA_EVENT_TRACE", "1", 1);
    EXPECT_TRUE(benchutil::job("CRC32", skylakeConfig()).cfg.eventTrace);
    setenv("NOREBA_EVENT_TRACE", "0", 1);
    EXPECT_FALSE(
        benchutil::job("CRC32", skylakeConfig()).cfg.eventTrace);
    unsetenv("NOREBA_EVENT_TRACE");

    SweepJob stripped = benchutil::job("mcf", skylakeConfig(), true, true);
    EXPECT_TRUE(stripped.trace.stripSetups);
    unsetenv("NOREBA_TRACE_LEN");
}

// Checkpoint journal + driver resilience (--keep-going/--checkpoint).

/** mkdtemp'd scratch directory, removed recursively on scope exit. */
struct TempDir
{
    TempDir()
    {
        char tmpl[] = "/tmp/noreba_exp_test_XXXXXX";
        path = mkdtemp(tmpl);
    }

    ~TempDir()
    {
        std::string cmd = "rm -rf '" + path + "'";
        if (std::system(cmd.c_str()) != 0)
            std::fprintf(stderr, "cleanup of %s failed\n", path.c_str());
    }

    std::string path;
};

/** Disarm the fault registry on scope exit, pass or fail. */
struct FaultGuard
{
    ~FaultGuard() { FaultRegistry::instance().disarm(); }
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

CoreStats
checkpointStats(uint64_t seedValue)
{
    CoreStats s;
    uint64_t v = seedValue;
    for (const CoreStatsField &f : CORE_STATS_FIELDS)
        if (f.counter)
            s.*f.counter = v++;
    s.branchStalls[0x400 + seedValue] = BranchStall{seedValue, 2, 3};
    return s;
}

TEST(Checkpoint, RoundTripsResultsAndValidatesFingerprint)
{
    TempDir dir;
    ExperimentSpec spec;
    spec.name = "exp_test_ckpt";

    ExperimentPlan plan;
    plan.add("mcf", "InO-C", testJob("mcf", CommitMode::InOrder));
    plan.add("mcf", "Noreba", testJob("mcf", CommitMode::Noreba));

    std::vector<SweepResult> results(2);
    for (size_t i = 0; i < results.size(); ++i) {
        results[i].job = plan.planned()[i].job;
        results[i].stats = checkpointStats(10 * (i + 1));
    }
    saveCheckpoint(dir.path, spec, plan.planned(), results);

    std::vector<SweepResult> loaded;
    ASSERT_TRUE(
        loadCheckpoint(dir.path, spec, plan.planned(), loaded));
    ASSERT_EQ(loaded.size(), 2u);
    for (size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_TRUE(loaded[i].ok);
        EXPECT_EQ(loaded[i].job.workload, "mcf");
        for (const CoreStatsField &f : CORE_STATS_FIELDS) {
            if (f.counter)
                EXPECT_EQ(loaded[i].stats.*f.counter,
                          results[i].stats.*f.counter)
                    << f.name << " of result " << i;
        }
        ASSERT_EQ(loaded[i].stats.branchStalls.size(),
                  results[i].stats.branchStalls.size());
        for (const auto &[pc, stall] : results[i].stats.branchStalls) {
            auto it = loaded[i].stats.branchStalls.find(pc);
            ASSERT_NE(it, loaded[i].stats.branchStalls.end());
            EXPECT_EQ(it->second.stallCycles, stall.stallCycles);
            EXPECT_EQ(it->second.instances, stall.instances);
            EXPECT_EQ(it->second.dependents, stall.dependents);
        }
    }

    // A plan that would simulate anything different must miss.
    ExperimentPlan grown;
    grown.add("mcf", "InO-C", testJob("mcf", CommitMode::InOrder));
    grown.add("mcf", "Noreba", testJob("mcf", CommitMode::Noreba));
    grown.add("CRC32", "InO-C", testJob("CRC32", CommitMode::InOrder));
    EXPECT_NE(planFingerprint(plan.planned()),
              planFingerprint(grown.planned()));
    std::vector<SweepResult> missed;
    EXPECT_FALSE(
        loadCheckpoint(dir.path, spec, grown.planned(), missed));
}

TEST(Checkpoint, NeverJournalsFailedOrEmptyRuns)
{
    TempDir dir;
    ExperimentSpec spec;
    spec.name = "exp_test_ckpt_failed";

    ExperimentPlan plan;
    plan.add("mcf", "InO-C", testJob("mcf", CommitMode::InOrder));
    std::vector<SweepResult> results(1);
    results[0].job = plan.planned()[0].job;
    results[0].ok = false;
    saveCheckpoint(dir.path, spec, plan.planned(), results);
    std::vector<SweepResult> loaded;
    EXPECT_FALSE(
        loadCheckpoint(dir.path, spec, plan.planned(), loaded));

    ExperimentPlan empty;
    std::vector<SweepResult> none;
    saveCheckpoint(dir.path, spec, empty.planned(), none);
    EXPECT_FALSE(loadCheckpoint(dir.path, spec, empty.planned(), none));
}

TEST(Driver, ResumesFromCheckpointWithoutSimulating)
{
    setenv("NOREBA_TRACE_LEN", "20000", 1);
    unsetenv("NOREBA_JSON_DIR");
    unsetenv("NOREBA_EVENT_TRACE");
    TempDir dir;
    FaultGuard guard;

    ExperimentSpec spec;
    spec.name = "exp_test_resume";
    spec.title = "Checkpoint resume";
    spec.description = "one workload, two modes";
    spec.plan = [](ExperimentPlan &plan) {
        plan.add("CRC32", "InO-C", testJob("CRC32", CommitMode::InOrder));
        plan.add("CRC32", "Noreba", testJob("CRC32", CommitMode::Noreba));
    };
    int reported = 0;
    uint64_t firstRunCycles = 0;
    spec.report = [&](const ExperimentResults &r) {
        ++reported;
        if (firstRunCycles == 0)
            firstRunCycles = r.at("CRC32", "InO-C").cycles;
        else
            EXPECT_EQ(r.at("CRC32", "InO-C").cycles, firstRunCycles);
    };

    RunOptions opts;
    opts.checkpointDir = dir.path;
    EXPECT_EQ(runExperiment(spec, opts), 0u);
    EXPECT_EQ(reported, 1);
    EXPECT_FALSE(
        slurp(checkpointPath(dir.path, spec.name)).empty());

    // Any attempt to run a sweep job now would throw: the resumed run
    // must serve every result from the journal without simulating.
    FaultRegistry::instance().arm("sweep.job=throw@1x*");
    EXPECT_EQ(runExperiment(spec, opts), 0u);
    EXPECT_EQ(reported, 2);
    unsetenv("NOREBA_TRACE_LEN");
}

TEST(Driver, KeepGoingRecordsFailuresAndSkipsReport)
{
    setenv("NOREBA_TRACE_LEN", "20000", 1);
    unsetenv("NOREBA_EVENT_TRACE");
    TempDir dir;
    setenv("NOREBA_JSON_DIR", dir.path.c_str(), 1);
    FaultGuard guard;

    ExperimentSpec spec;
    spec.name = "exp_test_keepgoing";
    spec.title = "Failure isolation";
    spec.description = "every job dies, the run survives";
    spec.plan = [](ExperimentPlan &plan) {
        plan.add("CRC32", "InO-C", testJob("CRC32", CommitMode::InOrder));
        plan.add("CRC32", "Noreba", testJob("CRC32", CommitMode::Noreba));
    };
    int reported = 0;
    spec.report = [&](const ExperimentResults &) { ++reported; };

    FaultRegistry::instance().arm("sweep.job=throw@1x*");
    RunOptions opts;
    opts.keepGoing = true;
    EXPECT_EQ(runExperiment(spec, opts), 2u);
    // Reports divide by failed jobs' zeroed stats; they must not run.
    EXPECT_EQ(reported, 0);

    const std::string json =
        slurp(dir.path + "/BENCH_exp_test_keepgoing.json");
    EXPECT_NE(json.find("\"failures\":"), std::string::npos);
    EXPECT_NE(json.find("\"site\": \"sweep.job\""), std::string::npos);
    EXPECT_NE(json.find("\"failed\": true"), std::string::npos);

    // Without --keep-going the same failure propagates (exit-1 path).
    EXPECT_THROW(runExperiment(spec, RunOptions{}), std::exception);
    unsetenv("NOREBA_JSON_DIR");
    unsetenv("NOREBA_TRACE_LEN");
}

TEST(Registrants, AllFifteenPaperExperimentsRegisterUniquely)
{
    // experimentRegistry() already holds whatever earlier tests added;
    // the real registrants must all be present exactly once after
    // registerAllExperiments() — which benchMain() runs via the bench
    // binary. Here we only check the names the CLI contract promises.
    // (Registration itself is covered by the driver smoke in CI.)
    const char *expected[] = {
        "fig01_motivation",      "tab01_events",
        "tab02_03_configs",      "fig06_main",
        "fig07_critical_branches", "fig08_ooo_fraction",
        "fig09_cq_sweep_perf",   "fig10_cq_sweep_power",
        "fig11_setup_overhead",  "fig12_core_sizes",
        "fig13_prefetching",     "fig14_ecl",
        "fig15_commit_width",    "fig16_power_area",
        "ablation_design",
    };
    registerAllExperiments();
    size_t at = 0;
    for (const ExperimentSpec &spec : experimentRegistry()) {
        if (at < std::size(expected) && spec.name == expected[at])
            ++at;
    }
    EXPECT_EQ(at, std::size(expected))
        << "paper experiments missing or out of order";
    for (const char *name : expected) {
        const ExperimentSpec *spec = findExperiment(name);
        ASSERT_NE(spec, nullptr) << name;
        EXPECT_FALSE(spec->title.empty()) << name;
        EXPECT_FALSE(spec->description.empty()) << name;
    }
}

} // namespace
