/**
 * @file
 * Property-based fuzzing of the whole co-design. A generator builds
 * random structured programs — nested ifs, loops, jump tables, shared
 * memory regions, loop-carried accumulators — then for every seed:
 *
 *  1. the program must verify before and after the pass;
 *  2. annotation must not change architectural results (checksums);
 *  3. every region must decode consistently (BIT/DCT replay);
 *  4. all non-speculative policies must retire the full trace;
 *  5. the dynamic dataflow oracle must find zero commit-order
 *     violations under Noreba and IdealReconvergence;
 *  6. the precision linter must produce warnings only, and the setup
 *     optimizer must keep the checker clean and the architectural
 *     checksum unchanged.
 *
 * This is the adversarial counterpart to the hand-written pass tests:
 * the generator aims for the shapes that historically broke the guard
 * assignment (diamonds feeding joint uses, loop-carried flows through
 * rare arms, sequential independent branches).
 */

#include <gtest/gtest.h>

#include <functional>
#include <unordered_map>

#include "analysis/annotation_checker.h"
#include "analysis/diagnostics.h"
#include "analysis/precision.h"
#include "analysis/verifier.h"
#include "compiler/annotation_opt.h"
#include "ir/dominance.h"
#include "test_util.h"

namespace noreba {
namespace {

using testutil::Prepared;
using testutil::prepare;
using testutil::run;

/** Accumulator registers the generator may create flows through. */
constexpr Reg ACCS[] = {S5, S6, S7, S8, A6, A7};
/** Scratch registers for block-local values. */
constexpr Reg TMPS[] = {T0, T1, T2, T3, T4};

/**
 * Build a random program: an outer counted loop whose body is a random
 * nest of branches; arms mix accumulator updates (loop-carried),
 * region stores/loads (memory-carried) and block-local arithmetic.
 */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
    Program prog("fuzz" + std::to_string(seed));

    const int64_t tableLen = 1 << 14;
    uint64_t table = prog.allocGlobal(tableLen * 8);
    for (int64_t i = 0; i < tableLen; ++i)
        prog.poke64(table + static_cast<uint64_t>(i) * 8, rng.next());
    uint64_t scratch = prog.allocGlobal(4096);
    const AliasRegion R_TABLE = 1, R_SCRATCH = 2;

    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int loop = b.newBlock("loop");
    int exit = b.newBlock("exit");

    b.at(entry)
        .li(S2, static_cast<int64_t>(table))
        .li(S9, static_cast<int64_t>(scratch))
        .li(S3, 0)
        .li(S4, 300 + static_cast<int64_t>(rng.below(200)))
        .li(S10, tableLen - 1)
        .li(S11, 0x9e3779b9)
        .fallthrough(loop);

    // Loop head: one fresh table load feeding the branch nest.
    b.at(loop)
        .mul(T0, S3, S11)
        .srli(T0, T0, 11)
        .and_(T0, T0, S10)
        .slli(T0, T0, 3)
        .add(T0, S2, T0)
        .ld(T1, T0, 0, R_TABLE);

    // Random straight-line filler in a block.
    auto filler = [&](int count) {
        for (int i = 0; i < count; ++i) {
            Reg a = TMPS[rng.below(3) + 2]; // T2..T4
            switch (rng.below(4)) {
              case 0: b.addi(a, a, static_cast<int64_t>(rng.below(9)));
                break;
              case 1: b.xor_(a, a, TMPS[rng.below(5)]); break;
              case 2: b.srli(a, a, 1); break;
              default: b.add(a, a, TMPS[rng.below(5)]); break;
            }
        }
    };

    // One random "effect" for an arm.
    auto effect = [&]() {
        Reg acc = ACCS[rng.below(std::size(ACCS))];
        switch (rng.below(4)) {
          case 0: // loop-carried accumulator (the dangerous one)
            b.add(acc, acc, T1);
            break;
          case 1: // memory-carried through the scratch region
            b.andi(T2, T1, 511);
            b.sd(T1, S9, 8 * static_cast<int64_t>(rng.below(8)),
                 R_SCRATCH);
            break;
          case 2: // read back what some arm may have written
            b.ld(T3, S9, 8 * static_cast<int64_t>(rng.below(8)),
                 R_SCRATCH);
            b.add(acc, acc, T3);
            break;
          default: // same-iteration value only
            b.slli(T2, T1, 1);
            b.xor_(T2, T2, T1);
            break;
        }
    };

    // Recursive random nest. Returns the block to continue from.
    // depth limits nesting; every path ends at a fresh join block.
    std::function<void(int, int)> nest = [&](int depth, int joinBlk) {
        filler(static_cast<int>(rng.below(4)));
        if (depth == 0 || rng.chance(0.35)) {
            effect();
            b.jump(joinBlk);
            return;
        }
        switch (rng.below(3)) {
          case 0: { // if-then
            int thenB = b.newBlock();
            int after = b.newBlock();
            b.andi(T2, T1, 1 << rng.below(4));
            b.bne(T2, ZERO, thenB, after);
            b.at(thenB);
            nest(depth - 1, after);
            b.at(after);
            effect();
            b.jump(joinBlk);
            break;
          }
          case 1: { // if-then-else
            int thenB = b.newBlock();
            int elseB = b.newBlock();
            int after = b.newBlock();
            b.andi(T2, T1, 3 << rng.below(3));
            b.beq(T2, ZERO, elseB, thenB);
            b.at(thenB);
            nest(depth - 1, after);
            b.at(elseB);
            nest(depth - 1, after);
            b.at(after);
            filler(static_cast<int>(rng.below(3)));
            effect();
            b.jump(joinBlk);
            break;
          }
          default: { // 3-way jump table
            int h0 = b.newBlock();
            int h1 = b.newBlock();
            int h2 = b.newBlock();
            int after = b.newBlock();
            b.andi(T2, T1, 15);
            b.jumpTable(T2, {h0, h1, h2});
            b.at(h0);
            nest(depth - 1, after);
            b.at(h1);
            effect();
            b.jump(after);
            b.at(h2);
            b.jump(after);
            b.at(after);
            effect();
            b.jump(joinBlk);
            break;
          }
        }
    };

    int latch = b.newBlock("latch");
    nest(2, latch);

    b.at(latch)
        .addi(S3, S3, 1)
        .blt(S3, S4, loop, exit);
    b.at(exit).halt();

    prog.finalize();
    return prog;
}

/** The same dataflow oracle as safety_checker_test (bit-per-branch). */
class DepBits
{
  public:
    explicit DepBits(size_t bits = 0) : words_((bits + 63) / 64, 0) {}
    void set(int i)
    {
        words_[static_cast<size_t>(i) >> 6] |= 1ull << (i & 63);
    }
    bool test(int i) const
    {
        return words_[static_cast<size_t>(i) >> 6] & (1ull << (i & 63));
    }
    void orWith(const DepBits &o)
    {
        for (size_t w = 0; w < words_.size(); ++w)
            words_[w] |= o.words_[w];
    }
    void resize(size_t bits) { words_.assign((bits + 63) / 64, 0); }

  private:
    std::vector<uint64_t> words_;
};

int
oracleViolations(const Program &prog, const Prepared &p,
                 CommitMode mode)
{
    const Function &fn = prog.function();
    const Layout &layout = prog.layout();
    std::unordered_map<uint64_t, int> blockOfPc, blockOfAnyPc;
    for (int bb = 0; bb < static_cast<int>(fn.numBlocks()); ++bb) {
        if (!fn.block(bb).insts.empty())
            blockOfPc[layout.blockPc(bb)] = bb;
        for (size_t i = 0; i < fn.block(bb).insts.size(); ++i)
            blockOfAnyPc[layout.pc(bb, static_cast<int>(i))] = bb;
    }
    DominatorTree pdom(fn, DominatorTree::Kind::PostDominators);

    int numBranches = 0;
    std::vector<int> instanceOf(p.trace.size(), -1);
    for (size_t i = 0; i < p.trace.size(); ++i)
        if (p.trace.records[i].isBranchSite())
            instanceOf[i] = numBranches++;

    std::vector<DepBits> deps(p.trace.size(), DepBits(numBranches));
    DepBits regDeps[NUM_ARCH_REGS];
    for (auto &d : regDeps)
        d.resize(numBranches);
    std::unordered_map<uint64_t, DepBits> memDeps;
    struct Active
    {
        int instance;
        int reconv;
        DepBits d;
    };
    std::vector<Active> active;

    for (size_t i = 0; i < p.trace.size(); ++i) {
        const TraceRecord &rec = p.trace.records[i];
        auto blk = blockOfPc.find(rec.pc);
        if (blk != blockOfPc.end()) {
            int bb = blk->second;
            active.erase(std::remove_if(active.begin(), active.end(),
                                        [bb](const Active &a) {
                                            return a.reconv == bb;
                                        }),
                         active.end());
        }
        DepBits d(numBranches);
        for (const Active &a : active)
            d.orWith(a.d);
        for (Reg r : {rec.rs1, rec.rs2, rec.rs3})
            if (r != REG_NONE && r != REG_ZERO)
                d.orWith(regDeps[r]);
        if (isLoad(rec.op)) {
            for (uint64_t w = rec.addrOrImm >> 3;
                 w <= (rec.addrOrImm + rec.memSize - 1) >> 3; ++w) {
                auto it = memDeps.find(w);
                if (it != memDeps.end())
                    d.orWith(it->second);
            }
        }
        deps[i] = d;
        if (rec.isBranchSite()) {
            Active a;
            a.instance = instanceOf[i];
            a.reconv = reconvergenceBlock(pdom, blockOfAnyPc.at(rec.pc));
            a.d = d;
            a.d.set(a.instance);
            active.push_back(a);
        }
        if (rec.rd > REG_ZERO || rec.rd >= FREG_BASE)
            regDeps[rec.rd] = d;
        if (isStore(rec.op)) {
            for (uint64_t w = rec.addrOrImm >> 3;
                 w <= (rec.addrOrImm + rec.memSize - 1) >> 3; ++w) {
                memDeps.emplace(w, DepBits(numBranches)).first->second =
                    d;
            }
        }
    }

    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = mode;
    Core core(cfg, p.trace, p.misp);
    int violations = 0;
    core.commitHook = [&](const PipelineView &c, const InFlight &inst) {
        for (const auto &[u, pc] : c.unresolvedBranches()) {
            if (u >= inst.idx)
                break;
            int b = instanceOf[static_cast<size_t>(u)];
            if (b >= 0 &&
                deps[static_cast<size_t>(inst.idx)].test(b))
                ++violations;
        }
    };
    core.run();
    return violations;
}

class FuzzPass : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzPass, EndToEndInvariants)
{
    Program plain = randomProgram(GetParam());
    Program annotated = randomProgram(GetParam());
    PassResult res = runBranchDependencePass(annotated);

    // 1. Structure survives.
    ASSERT_EQ(annotated.function().verify(), "");
    EXPECT_GE(res.numMarkedBranches, 1);

    // 1b. The static verifier and the independent annotation checker
    //     accept both sides of the pass: no execution, second oracle.
    {
        Diagnostics dp(plain.name());
        EXPECT_TRUE(verifyProgram(plain, dp)) << dp.toText();
        EXPECT_TRUE(checkAnnotations(plain, dp)) << dp.toText();
        Diagnostics da(annotated.name());
        EXPECT_TRUE(verifyProgram(annotated, da)) << da.toText();
        CheckOptions copts;
        copts.requireAnnotations = true;
        EXPECT_TRUE(checkAnnotations(annotated, da, copts))
            << da.toText();
    }

    // 2. Semantics preserved.
    InterpOptions opts;
    opts.maxDynInsts = 25000;
    Interpreter ia(plain), ib(annotated);
    DynamicTrace ta = ia.run(opts);
    DynamicTrace tb = ib.run(opts);
    ASSERT_EQ(ia.regChecksum(), ib.regChecksum());
    ASSERT_EQ(ta.dynInsts, tb.dynInsts);

    // 3. Every guard reference is an older marked branch.
    for (size_t i = 0; i < tb.size(); ++i) {
        TraceIdx g = tb.records[i].guardIdx;
        if (g != TRACE_NONE) {
            ASSERT_LT(g, static_cast<TraceIdx>(i));
            ASSERT_TRUE(
                tb.records[static_cast<size_t>(g)].isBranchSite());
        }
    }

    // 4. Every policy retires the full trace.
    Prepared p;
    p.trace = std::move(tb);
    p.misp = precomputeMispredictions(p.trace);
    for (CommitMode mode :
         {CommitMode::InOrder, CommitMode::NonSpecOoO,
          CommitMode::ValidationBuffer, CommitMode::Noreba,
          CommitMode::IdealReconv}) {
        CoreStats s = run(p, mode);
        ASSERT_EQ(s.committedInsts, p.trace.dynInsts)
            << commitModeName(mode);
    }

    // 5. No commit-order violations against the dataflow oracle.
    EXPECT_EQ(oracleViolations(annotated, p, CommitMode::Noreba), 0);
    EXPECT_EQ(oracleViolations(annotated, p, CommitMode::IdealReconv),
              0);

    // 6. The precision linter only warns on pass output, and the
    //    setup optimizer preserves both the checker's proofs and the
    //    architectural results.
    {
        Diagnostics pd(annotated.name());
        analyzePrecision(annotated, &pd);
        EXPECT_EQ(pd.errorCount(), 0) << pd.toText();

        Program optimized = annotated;
        optimizeAnnotations(optimized);
        Diagnostics post(optimized.name());
        EXPECT_TRUE(verifyProgram(optimized, post)) << post.toText();
        EXPECT_TRUE(checkAnnotations(optimized, post))
            << post.toText();
        Interpreter io(optimized);
        DynamicTrace to = io.run(opts);
        EXPECT_EQ(io.regChecksum(), ia.regChecksum());
        EXPECT_EQ(to.dynInsts, ta.dynInsts);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPass,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
} // namespace noreba
