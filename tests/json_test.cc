/**
 * @file
 * Tests for the JSON parser and the hardened writer: parse round-trips,
 * error reporting with byte offsets, 64-bit number precision, string
 * escapes (including surrogate pairs), crash-atomic writeJsonFile
 * publication, and locale-independence of numeric output.
 */

#include <clocale>
#include <cstdio>
#include <cstring>
#include <string>

#include <dirent.h>

#include <gtest/gtest.h>

#include "common/json.h"

using namespace noreba;

namespace {

JsonValue
parseOk(const std::string &text)
{
    std::string err;
    JsonValue v = JsonValue::parse(text, &err);
    EXPECT_TRUE(err.empty()) << text << ": " << err;
    return v;
}

void
expectParseError(const std::string &text, const char *needle)
{
    std::string err;
    JsonValue v = JsonValue::parse(text, &err);
    EXPECT_FALSE(err.empty()) << text;
    EXPECT_TRUE(v.isNull()) << text;
    EXPECT_NE(err.find(needle), std::string::npos)
        << text << ": got \"" << err << "\"";
    // Every error names the byte offset of the first problem.
    EXPECT_NE(err.find("at byte"), std::string::npos) << err;
}

TEST(JsonParse, RoundTripsNestedDocument)
{
    JsonValue doc = JsonValue::object();
    doc.set("name", "bench")
        .set("count", uint64_t{42})
        .set("delta", -7)
        .set("ratio", 1.5)
        .set("ok", true)
        .set("missing", JsonValue());
    JsonValue arr = JsonValue::array();
    arr.push(1).push("two").push(JsonValue::object().set("k", false));
    doc.set("items", std::move(arr));

    // dump -> parse -> dump is the identity on writer output (both
    // compact and pretty forms parse to the same value).
    std::string text = doc.dump();
    JsonValue parsed = parseOk(text);
    EXPECT_EQ(parsed.dump(), text);
    EXPECT_EQ(parseOk(doc.dump(2)).dump(), text);

    EXPECT_EQ(parsed.find("name")->asString(), "bench");
    EXPECT_EQ(parsed.find("count")->asUint(), 42u);
    EXPECT_EQ(parsed.find("delta")->asInt(), -7);
    EXPECT_EQ(parsed.find("ratio")->asDouble(), 1.5);
    EXPECT_TRUE(parsed.find("ok")->asBool());
    EXPECT_TRUE(parsed.find("missing")->isNull());
    EXPECT_EQ(parsed.find("absent"), nullptr);
    const JsonValue *items = parsed.find("items");
    ASSERT_TRUE(items && items->isArray());
    EXPECT_EQ(items->at(1).asString(), "two");
}

TEST(JsonParse, NumberKindsKeepFullPrecision)
{
    EXPECT_EQ(parseOk("9223372036854775807").asInt(), INT64_MAX);
    EXPECT_EQ(parseOk("-9223372036854775808").asInt(), INT64_MIN);
    // Past INT64_MAX integers land in the Uint kind, not a lossy double.
    EXPECT_EQ(parseOk("18446744073709551615").asUint(), UINT64_MAX);
    EXPECT_EQ(parseOk("1e3").asDouble(), 1000.0);
    EXPECT_EQ(parseOk("-2.5E-1").asDouble(), -0.25);
    EXPECT_EQ(parseOk("0").asUint(), 0u);
    // A non-negative Int converts through asUint; a fitting Uint
    // through asInt.
    EXPECT_EQ(parseOk("7").asUint(), 7u);
    EXPECT_EQ(parseOk("7").asInt(), 7);
}

TEST(JsonParse, StringEscapesAndSurrogates)
{
    EXPECT_EQ(parseOk("\"a\\\"b\\\\c\\n\\t\"").asString(), "a\"b\\c\n\t");
    EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9");
    // Surrogate pair: U+1F600 as UTF-8.
    EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
    // The writer's escaping must parse back to the original bytes.
    std::string nasty = "quote\" slash\\ ctl\x01 text";
    EXPECT_EQ(parseOk(JsonValue::escape(nasty)).asString(), nasty);
}

TEST(JsonParse, ReportsErrorsWithOffsets)
{
    expectParseError("", "unexpected end of input");
    expectParseError("{\"a\":}", "invalid number");
    expectParseError("[1,2", "unterminated array");
    expectParseError("{\"a\" 1}", "expected ':'");
    expectParseError("[1] x", "trailing characters");
    expectParseError("tru", "invalid literal");
    expectParseError("\"\\ud800\"", "unpaired surrogate");
    expectParseError("\"\\q\"", "invalid escape");
    expectParseError("01x", "trailing characters");
    expectParseError("1.", "invalid number");

    std::string deep(200, '[');
    expectParseError(deep, "nesting too deep");
}

TEST(JsonWrite, FileIsPublishedAtomicallyAndLeavesNoTemps)
{
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "json_write_test.json";

    JsonValue first = JsonValue::object();
    first.set("generation", 1);
    writeJsonFile(path, first);

    // Overwrite via rename: the second generation fully replaces the
    // first.
    JsonValue second = JsonValue::object();
    second.set("generation", 2).set("extra", "yes");
    writeJsonFile(path, second);

    std::string text;
    {
        FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    std::string err;
    JsonValue parsed = JsonValue::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(parsed.find("generation")->asInt(), 2);
    EXPECT_EQ(parsed.find("extra")->asString(), "yes");

    // No .tmp. intermediates survive a successful publish.
    DIR *d = ::opendir(dir.c_str());
    ASSERT_NE(d, nullptr);
    while (struct dirent *ent = ::readdir(d)) {
        EXPECT_EQ(std::strstr(ent->d_name, "json_write_test.json.tmp."),
                  nullptr)
            << "leftover temp file " << ent->d_name;
    }
    ::closedir(d);
    std::remove(path.c_str());
}

TEST(JsonWrite, NumbersIgnoreCommaDecimalLocale)
{
    // Force a comma-decimal locale if the image ships one; the dump
    // must still be valid JSON ('.', not ',').
    const char *candidates[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                                "fr_FR", nullptr};
    const char *chosen = nullptr;
    for (const char **c = candidates; *c; ++c) {
        if (std::setlocale(LC_NUMERIC, *c)) {
            chosen = *c;
            break;
        }
    }
    if (!chosen)
        GTEST_SKIP() << "no comma-decimal locale installed";
    // Only meaningful if the locale really uses a comma.
    if (std::strcmp(std::localeconv()->decimal_point, ".") == 0) {
        std::setlocale(LC_NUMERIC, "C");
        GTEST_SKIP() << "locale " << chosen << " uses '.' anyway";
    }

    std::string dumped = JsonValue(1.5).dump();
    std::string err;
    JsonValue round = JsonValue::parse(dumped, &err);
    std::setlocale(LC_NUMERIC, "C");

    EXPECT_EQ(dumped, "1.5");
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(round.asDouble(), 1.5);
}

} // namespace
