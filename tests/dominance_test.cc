/**
 * @file
 * Unit tests for dominator/post-dominator trees and reconvergence
 * detection (step A of the NOREBA pass) on textbook CFG shapes.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/dominance.h"

namespace noreba {
namespace {

/** entry -> (then | else) -> join -> halt */
Program
diamond()
{
    Program prog("diamond");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int thenB = b.newBlock("then");
    int elseB = b.newBlock("else");
    int join = b.newBlock("join");
    b.at(entry).li(T0, 1).beq(T0, ZERO, elseB, thenB);
    b.at(thenB).nop().jump(join);
    b.at(elseB).nop().jump(join);
    b.at(join).halt();
    prog.finalize();
    return prog;
}

TEST(Dominance, DiamondPostDominators)
{
    Program prog = diamond();
    DominatorTree pdom(prog.function(),
                       DominatorTree::Kind::PostDominators);
    // join post-dominates everything; it is ipdom of entry/then/else.
    EXPECT_EQ(pdom.idom(0), 3);
    EXPECT_EQ(pdom.idom(1), 3);
    EXPECT_EQ(pdom.idom(2), 3);
    EXPECT_EQ(pdom.idom(3), -1); // only the virtual exit above it
    EXPECT_TRUE(pdom.dominates(3, 0));
    EXPECT_FALSE(pdom.dominates(1, 0)); // then doesn't pdom entry
}

TEST(Dominance, DiamondDominators)
{
    Program prog = diamond();
    DominatorTree dom(prog.function(), DominatorTree::Kind::Dominators);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_EQ(dom.idom(2), 0);
    EXPECT_EQ(dom.idom(3), 0); // join's idom is entry, not then/else
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
}

TEST(Dominance, ReconvergenceOfDiamondBranch)
{
    Program prog = diamond();
    DominatorTree pdom(prog.function(),
                       DominatorTree::Kind::PostDominators);
    EXPECT_EQ(reconvergenceBlock(pdom, 0), 3);
}

TEST(Dominance, LoopBranchReconvergesAtExit)
{
    Program prog("loop");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int body = b.newBlock("body");
    int exit = b.newBlock("exit");
    b.at(entry).li(T0, 0).fallthrough(body);
    b.at(body).addi(T0, T0, 1).slti(T1, T0, 9).bne(T1, ZERO, body, exit);
    b.at(exit).halt();
    prog.finalize();

    DominatorTree pdom(prog.function(),
                       DominatorTree::Kind::PostDominators);
    EXPECT_EQ(reconvergenceBlock(pdom, 1), 2);
}

TEST(Dominance, NestedIfInnermostFirst)
{
    // entry -> outer_then { inner branch } -> join; nested regions.
    Program prog("nested");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int outer = b.newBlock("outer_then");
    int inner = b.newBlock("inner_then");
    int innerJoin = b.newBlock("inner_join");
    int join = b.newBlock("join");
    b.at(entry).li(T0, 1).beq(T0, ZERO, join, outer);
    b.at(outer).li(T1, 2).beq(T1, ZERO, innerJoin, inner);
    b.at(inner).nop().jump(innerJoin);
    b.at(innerJoin).nop().jump(join);
    b.at(join).halt();
    prog.finalize();

    DominatorTree pdom(prog.function(),
                       DominatorTree::Kind::PostDominators);
    EXPECT_EQ(reconvergenceBlock(pdom, 0), 4); // outer branch -> join
    EXPECT_EQ(reconvergenceBlock(pdom, 1), 3); // inner -> inner_join
    // Nesting: inner_join is post-dominated by join.
    EXPECT_TRUE(pdom.dominates(4, 3));
}

TEST(Dominance, MultipleExits)
{
    // A branch whose arms HALT separately: no common post-dominator
    // other than the virtual exit.
    Program prog("exits");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int a = b.newBlock("a");
    int c = b.newBlock("c");
    b.at(entry).li(T0, 1).beq(T0, ZERO, c, a);
    b.at(a).halt();
    b.at(c).halt();
    prog.finalize();

    DominatorTree pdom(prog.function(),
                       DominatorTree::Kind::PostDominators);
    EXPECT_EQ(reconvergenceBlock(pdom, 0), -1);
}

TEST(Dominance, JumpTableReconverges)
{
    Program prog("switch");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int h0 = b.newBlock("h0");
    int h1 = b.newBlock("h1");
    int h2 = b.newBlock("h2");
    int join = b.newBlock("join");
    b.at(entry).li(T0, 1).jumpTable(T0, {h0, h1, h2});
    b.at(h0).nop().jump(join);
    b.at(h1).nop().jump(join);
    b.at(h2).nop().jump(join);
    b.at(join).halt();
    prog.finalize();

    DominatorTree pdom(prog.function(),
                       DominatorTree::Kind::PostDominators);
    EXPECT_EQ(reconvergenceBlock(pdom, 0), 4);
}

TEST(Dominance, UnreachableBlockHasNoIdom)
{
    Program prog("unreach");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int dead = b.newBlock("dead");
    int exit = b.newBlock("exit");
    b.at(entry).jump(exit);
    b.at(dead).jump(exit);
    b.at(exit).halt();
    prog.finalize();

    DominatorTree dom(prog.function(), DominatorTree::Kind::Dominators);
    EXPECT_EQ(dom.idom(1), -1);
    EXPECT_EQ(dom.depth(1), -1);
}

TEST(Dominance, DepthIncreasesDownTheTree)
{
    Program prog = diamond();
    DominatorTree dom(prog.function(), DominatorTree::Kind::Dominators);
    EXPECT_EQ(dom.depth(0), 0);
    EXPECT_GT(dom.depth(1), dom.depth(0));
}

} // namespace
} // namespace noreba
