/**
 * @file
 * Tests for the NOREBA Selective-ROB commit policy: steering per
 * Table 1, queue capacities, CQT lifetime, CIT capacity gating, and
 * the relationships Figures 6/9 rely on.
 */

#include <gtest/gtest.h>

#include "test_util.h"

namespace noreba {
namespace {

using testutil::Prepared;
using testutil::prepare;
using testutil::run;

TEST(Noreba, CommitsPastDelinquentBranch)
{
    Program prog = testutil::delinquentLoop(5000);
    Prepared p = prepare(prog);
    CoreStats ino = run(p, CommitMode::InOrder);
    CoreStats nor = run(p, CommitMode::Noreba);
    EXPECT_GT(nor.oooCommitFraction(), 0.25);
    EXPECT_LT(nor.cycles, ino.cycles);
}

TEST(Noreba, UnannotatedProgramBehavesInOrderish)
{
    // Without setup instructions everything steers to the PR-CQ in
    // program order (Section 4.2).
    Program prog("plain");
    {
        Rng rng(42);
        const int64_t tableLen = 1 << 18;
        uint64_t table = prog.allocGlobal(tableLen * 8);
        for (int64_t i = 0; i < tableLen; ++i)
            prog.poke64(table + static_cast<uint64_t>(i) * 8,
                        rng.next());
        IRBuilder b(prog);
        int entry = b.newBlock();
        int loop = b.newBlock();
        int rare = b.newBlock();
        int next = b.newBlock();
        int exit = b.newBlock();
        b.at(entry)
            .li(S2, static_cast<int64_t>(table))
            .li(S3, 0)
            .li(S4, 2000)
            .li(S7, tableLen - 1)
            .li(S8, 0x9e3779b9)
            .fallthrough(loop);
        b.at(loop)
            .mul(T0, S3, S8)
            .srli(T0, T0, 13)
            .and_(T0, T0, S7)
            .slli(T0, T0, 3)
            .add(T0, S2, T0)
            .ld(T1, T0, 0, 1)
            .andi(T2, T1, 15)
            .beq(T2, ZERO, rare, next);
        b.at(rare).add(S5, S5, T1).jump(next);
        b.at(next).addi(S3, S3, 1).blt(S3, S4, loop, exit);
        b.at(exit).halt();
        prog.finalize();
        // No pass: BranchID 0 everywhere.
    }
    Prepared p = prepare(prog);
    CoreStats nor = run(p, CommitMode::Noreba);
    // Memory ops still early-reclaim at the PR-CQ head, but nothing
    // passes an unresolved branch, so OoO commit stays minimal.
    EXPECT_LT(nor.oooCommitFraction(), 0.30);
}

TEST(Noreba, CitCapacityGatesCommitAhead)
{
    Program prog = testutil::delinquentLoop(5000);
    Prepared p = prepare(prog);

    CoreConfig tiny = skylakeConfig();
    tiny.srob.citEntries = 2;
    CoreStats small = run(p, CommitMode::Noreba, tiny);

    CoreConfig big = skylakeConfig();
    big.srob.citEntries = 512;
    CoreStats large = run(p, CommitMode::Noreba, big);

    EXPECT_GT(small.citFullStalls, large.citFullStalls);
    EXPECT_LE(large.cycles, small.cycles);
    EXPECT_LT(small.oooCommitFraction(), large.oooCommitFraction());
}

TEST(Noreba, QueueSizingSaturates)
{
    // Figure 9's shape: growing the BR-CQs beyond 2x8 helps little.
    Program prog = testutil::delinquentLoop(5000);
    Prepared p = prepare(prog);

    auto cyclesFor = [&](int nq, int entries) {
        CoreConfig cfg = skylakeConfig();
        cfg.srob.numBrCqs = nq;
        cfg.srob.brCqEntries = entries;
        cfg.srob.prCqEntries = entries;
        return run(p, CommitMode::Noreba, cfg).cycles;
    };
    uint64_t tiny = cyclesFor(1, 2);
    uint64_t paper = cyclesFor(2, 8);
    uint64_t huge = cyclesFor(8, 64);
    EXPECT_LE(paper, tiny);
    // Saturation: the jump from 2x8 to 8x64 is under 10%.
    EXPECT_LT(static_cast<double>(paper) - static_cast<double>(huge),
              0.10 * static_cast<double>(paper));
}

TEST(Noreba, TracksIdealReconvergenceClosely)
{
    Program prog = testutil::delinquentLoop(6000);
    Prepared p = prepare(prog);
    CoreStats nor = run(p, CommitMode::Noreba);
    CoreStats ideal = run(p, CommitMode::IdealReconv);
    // Figure 9 reports ~99% of ideal at 2x8 queues. Our model enforces
    // in-order retirement among instances of one static branch (a
    // soundness requirement the paper does not discuss — see
    // EXPERIMENTS.md), which costs real headroom on this worst-case
    // kernel whose every iteration re-executes the delinquent site.
    EXPECT_GE(static_cast<double>(ideal.cycles) /
                  static_cast<double>(nor.cycles),
              0.55);
}

TEST(Noreba, SteeringWaitsForPageTableCheck)
{
    // A pointer-chase body: addresses depend on loaded data, so the
    // in-order TLB gate at the ROB' head throttles steering.
    Program prog("chase");
    {
        Rng rng(4);
        const int64_t n = 1 << 16;
        uint64_t arr = prog.allocGlobal(n * 8);
        // A random cycle of pointers.
        std::vector<uint64_t> perm(n);
        for (int64_t i = 0; i < n; ++i)
            perm[static_cast<size_t>(i)] = static_cast<uint64_t>(i);
        for (int64_t i = n - 1; i > 0; --i)
            std::swap(perm[static_cast<size_t>(i)],
                      perm[rng.below(static_cast<uint64_t>(i + 1))]);
        for (int64_t i = 0; i < n; ++i)
            prog.poke64(arr + perm[static_cast<size_t>(i)] * 8,
                        arr + perm[static_cast<size_t>((i + 1) % n)] *
                                  8);
        IRBuilder b(prog);
        int e = b.newBlock();
        int loop = b.newBlock();
        int exit = b.newBlock();
        b.at(e)
            .li(T0, static_cast<int64_t>(arr + perm[0] * 8))
            .li(T6, 0)
            .li(T5, 3000)
            .fallthrough(loop);
        b.at(loop)
            .ld(T0, T0, 0, 1) // next = *p
            .addi(T6, T6, 1)
            .blt(T6, T5, loop, exit);
        b.at(exit).halt();
        prog.finalize();
        runBranchDependencePass(prog);
    }
    Prepared p = prepare(prog);
    CoreStats s = run(p, CommitMode::Noreba);
    EXPECT_GT(s.steerStallTlb, 1000u);
}

TEST(Noreba, BrCqFullStallsUnderDelinquencyFlood)
{
    // One delinquent branch per few instructions floods the two
    // BR-CQs; shrinking them to a single 2-entry queue must show
    // queue-full steering stalls.
    Program prog = testutil::delinquentLoop(4000);
    Prepared p = prepare(prog);
    CoreConfig cfg = skylakeConfig();
    cfg.srob.numBrCqs = 1;
    cfg.srob.brCqEntries = 2;
    cfg.srob.prCqEntries = 2;
    CoreStats s = run(p, CommitMode::Noreba, cfg);
    EXPECT_GT(s.steerStallCqFull, 0u);
}

TEST(Noreba, SelectiveRobActivityIsCounted)
{
    Program prog = testutil::delinquentLoop(2000);
    Prepared p = prepare(prog);
    CoreStats s = run(p, CommitMode::Noreba);
    EXPECT_GT(s.bitOps, 0u);
    EXPECT_GT(s.dctOps, 0u);
    EXPECT_GT(s.cqtOps, 0u);
    EXPECT_GT(s.cqOps, s.committedInsts); // push + pop per instruction
    EXPECT_GT(s.citOps, 0u);
}

TEST(Noreba, EclIsSubsumedByBaseNoreba)
{
    Program prog = testutil::delinquentLoop(3000);
    Prepared p = prepare(prog);
    CoreConfig ecl = skylakeConfig();
    ecl.earlyCommitLoads = true;
    CoreStats base = run(p, CommitMode::Noreba);
    CoreStats withEcl = run(p, CommitMode::Noreba, ecl);
    // Base Noreba already reclaims TLB-checked loads (footnote 1).
    EXPECT_NEAR(static_cast<double>(base.cycles),
                static_cast<double>(withEcl.cycles),
                0.02 * static_cast<double>(base.cycles));
}

TEST(Noreba, EclHelpsInOrderBaseline)
{
    // ECL shines when the commit head is a long-latency load with no
    // branch in the way: the load retires at its page-table check.
    Program prog("loadbound");
    {
        Rng rng(6);
        const int64_t n = 1 << 18; // 2 MB
        uint64_t buf = prog.allocGlobal(n * 8);
        for (int64_t i = 0; i < n; ++i)
            prog.poke64(buf + static_cast<uint64_t>(i) * 8,
                        rng.next());
        IRBuilder b(prog);
        int e = b.newBlock();
        int loop = b.newBlock();
        int exit = b.newBlock();
        b.at(e)
            .li(S2, static_cast<int64_t>(buf))
            .li(T6, 0)
            .li(T5, 3000)
            .li(S7, n - 1)
            .li(S8, 0x9e3779b9)
            .fallthrough(loop);
        b.at(loop)
            .mul(T0, T6, S8)
            .srli(T0, T0, 13)
            .and_(T0, T0, S7)
            .slli(T0, T0, 3)
            .add(T0, S2, T0)
            .ld(T1, T0, 0, 1) // delinquent, no dependent branch
            .addi(S6, S6, 1)
            .xori(S6, S6, 3)
            .addi(T6, T6, 1)
            .blt(T6, T5, loop, exit);
        b.at(exit).halt();
        prog.finalize();
    }
    Prepared p = prepare(prog);
    CoreConfig ecl = skylakeConfig();
    ecl.earlyCommitLoads = true;
    CoreStats plain = run(p, CommitMode::InOrder);
    CoreStats withEcl = run(p, CommitMode::InOrder, ecl);
    EXPECT_LT(withEcl.cycles, plain.cycles);
}

TEST(Noreba, CommitWidthStillCaps)
{
    Program prog = testutil::delinquentLoop(3000);
    Prepared p = prepare(prog);
    CoreConfig narrow = skylakeConfig();
    narrow.commitWidth = 1;
    narrow.steerWidth = 1;
    CoreStats n1 = run(p, CommitMode::Noreba, narrow);
    CoreStats n4 = run(p, CommitMode::Noreba);
    EXPECT_GT(n1.cycles, n4.cycles);
    EXPECT_GE(n1.cycles, p.trace.dynInsts); // <= 1 IPC at width 1
}

} // namespace
} // namespace noreba
