/**
 * @file
 * Parameterized tests over the full 20-workload suite: structural
 * validity, pass applicability, semantic preservation under
 * annotation, and determinism.
 */

#include <gtest/gtest.h>

#include "compiler/branch_dep.h"
#include "interp/interpreter.h"
#include "workloads/workloads.h"

namespace noreba {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSuite, BuildsAndVerifies)
{
    Program prog = buildWorkload(GetParam());
    EXPECT_EQ(prog.function().verify(), "");
    EXPECT_GT(prog.function().numInsts(), 10u);
    EXPECT_FALSE(prog.dataSegments().empty());
}

TEST_P(WorkloadSuite, PassAnnotatesAndStillVerifies)
{
    Program prog = buildWorkload(GetParam());
    PassResult res = runBranchDependencePass(prog);
    EXPECT_EQ(prog.function().verify(), "");
    EXPECT_GE(res.numMarkedBranches, 1);
    EXPECT_GT(res.numSetupInsts, 0);
    EXPECT_GT(res.instsAfter, res.instsBefore);
    // Every marked branch got a valid 3-bit compiler ID.
    for (const auto &site : res.branches) {
        EXPECT_GE(site.compilerId, 0);
        EXPECT_LT(site.compilerId, 8);
    }
}

TEST_P(WorkloadSuite, AnnotationPreservesArchitecturalResults)
{
    Program plain = buildWorkload(GetParam());
    Program annotated = buildWorkload(GetParam());
    runBranchDependencePass(annotated);

    InterpOptions opts;
    opts.maxDynInsts = 40000;
    Interpreter a(plain), b(annotated);
    DynamicTrace ta = a.run(opts);
    DynamicTrace tb = b.run(opts);
    EXPECT_EQ(a.regChecksum(), b.regChecksum()) << GetParam();
    EXPECT_EQ(ta.dynInsts, tb.dynInsts);
    EXPECT_EQ(ta.branches, tb.branches);
}

TEST_P(WorkloadSuite, TraceHasExpectedShape)
{
    Program prog = buildWorkload(GetParam());
    runBranchDependencePass(prog);
    InterpOptions opts;
    opts.maxDynInsts = 40000;
    DynamicTrace trace = Interpreter(prog).run(opts);
    EXPECT_EQ(trace.dynInsts, 40000u); // every workload is long enough
    EXPECT_GT(trace.branches, 500u);   // all are loop-based
    EXPECT_GT(trace.loads, 100u);
    // Setup overhead stays within a sane band.
    double overhead = static_cast<double>(trace.setupInsts) /
                      static_cast<double>(trace.dynInsts);
    EXPECT_LT(overhead, 0.50) << GetParam();
    // guardIdx always references an older record.
    for (size_t i = 0; i < trace.size(); ++i) {
        if (trace.records[i].guardIdx != TRACE_NONE) {
            EXPECT_LT(trace.records[i].guardIdx,
                      static_cast<TraceIdx>(i));
            EXPECT_TRUE(
                trace.records[static_cast<size_t>(
                                  trace.records[i].guardIdx)]
                    .isBranchSite());
        }
    }
}

TEST_P(WorkloadSuite, DeterministicForSameSeedDivergesAcrossSeeds)
{
    WorkloadParams p1;
    p1.seed = 42;
    WorkloadParams p2;
    p2.seed = 43;
    Program a = buildWorkload(GetParam(), p1);
    Program b = buildWorkload(GetParam(), p1);
    Program c = buildWorkload(GetParam(), p2);

    InterpOptions opts;
    opts.maxDynInsts = 20000;
    Interpreter ia(a), ib(b), ic(c);
    ia.run(opts);
    ib.run(opts);
    ic.run(opts);
    EXPECT_EQ(ia.regChecksum(), ib.regChecksum());
    EXPECT_NE(ia.regChecksum(), ic.regChecksum()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(WorkloadRegistry, HasTwentyEntriesInBothSuites)
{
    int spec = 0, mibench = 0;
    for (const auto &desc : workloadRegistry()) {
        EXPECT_FALSE(desc.profile.empty());
        if (desc.suite == "spec")
            ++spec;
        else if (desc.suite == "mibench")
            ++mibench;
    }
    EXPECT_EQ(spec, 14);
    EXPECT_EQ(mibench, 6);
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_DEATH(buildWorkload("no-such-benchmark"), "unknown workload");
}

TEST(WorkloadRegistry, ScaleShrinksTraces)
{
    WorkloadParams small;
    small.scale = 0.1;
    Program prog = buildWorkload("mcf", small);
    DynamicTrace t = Interpreter(prog).run();
    WorkloadParams big;
    Program prog2 = buildWorkload("mcf", big);
    DynamicTrace t2 = Interpreter(prog2).run();
    EXPECT_LT(t.dynInsts, t2.dynInsts / 5);
}

} // namespace
} // namespace noreba
