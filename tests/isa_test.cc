/** @file Unit tests for the ISA layer and setup-instruction encoding. */

#include <gtest/gtest.h>

#include "isa/isa.h"
#include "isa/setup_encoding.h"

namespace noreba {
namespace {

TEST(Isa, LoadStoreClassification)
{
    for (Opcode op : {Opcode::LB, Opcode::LH, Opcode::LW, Opcode::LD,
                      Opcode::FLW, Opcode::FLD}) {
        EXPECT_TRUE(isLoad(op)) << opcodeName(op);
        EXPECT_FALSE(isStore(op));
        EXPECT_TRUE(isMem(op));
    }
    for (Opcode op : {Opcode::SB, Opcode::SH, Opcode::SW, Opcode::SD,
                      Opcode::FSW, Opcode::FSD}) {
        EXPECT_TRUE(isStore(op)) << opcodeName(op);
        EXPECT_FALSE(isLoad(op));
    }
    EXPECT_FALSE(isMem(Opcode::ADD));
}

TEST(Isa, ControlClassification)
{
    for (Opcode op : {Opcode::BEQ, Opcode::BNE, Opcode::BLT,
                      Opcode::BGE, Opcode::BLTU, Opcode::BGEU}) {
        EXPECT_TRUE(isCondBranch(op));
        EXPECT_TRUE(isControl(op));
    }
    EXPECT_TRUE(isJump(Opcode::JAL));
    EXPECT_TRUE(isJump(Opcode::JALR));
    EXPECT_FALSE(isCondBranch(Opcode::JAL));
    EXPECT_FALSE(isControl(Opcode::ADD));
}

TEST(Isa, SetupAndCitOps)
{
    EXPECT_TRUE(isSetup(Opcode::SET_BRANCH_ID));
    EXPECT_TRUE(isSetup(Opcode::SET_DEPENDENCY));
    EXPECT_FALSE(isSetup(Opcode::GET_CIT_ENTRY));
    EXPECT_TRUE(isCitOp(Opcode::GET_CIT_ENTRY));
    EXPECT_TRUE(isCitOp(Opcode::SET_CIT_ENTRY));
}

TEST(Isa, OnlyMemoryRaises)
{
    // RISC-V FP exceptions accrue in fcsr and never trap (Section 4.4).
    EXPECT_TRUE(mayRaiseException(Opcode::LW));
    EXPECT_TRUE(mayRaiseException(Opcode::SD));
    EXPECT_FALSE(mayRaiseException(Opcode::FDIV));
    EXPECT_FALSE(mayRaiseException(Opcode::FSQRT));
    EXPECT_FALSE(mayRaiseException(Opcode::ADD));
    EXPECT_FALSE(mayRaiseException(Opcode::BEQ));
}

TEST(Isa, FuClasses)
{
    EXPECT_EQ(fuClass(Opcode::ADD), FuClass::IntAlu);
    EXPECT_EQ(fuClass(Opcode::MUL), FuClass::IntMul);
    EXPECT_EQ(fuClass(Opcode::DIV), FuClass::IntDiv);
    EXPECT_EQ(fuClass(Opcode::FADD), FuClass::FpAlu);
    EXPECT_EQ(fuClass(Opcode::FMADD), FuClass::FpMul);
    EXPECT_EQ(fuClass(Opcode::FSQRT), FuClass::FpDiv);
    EXPECT_EQ(fuClass(Opcode::LW), FuClass::MemRead);
    EXPECT_EQ(fuClass(Opcode::SW), FuClass::MemWrite);
    EXPECT_EQ(fuClass(Opcode::BNE), FuClass::Branch);
    EXPECT_EQ(fuClass(Opcode::JALR), FuClass::Branch);
    EXPECT_EQ(fuClass(Opcode::SET_BRANCH_ID), FuClass::None);
    EXPECT_EQ(fuClass(Opcode::NOP), FuClass::None);
}

TEST(Isa, LatenciesAreOrdered)
{
    EXPECT_EQ(execLatency(Opcode::ADD), 1);
    EXPECT_GT(execLatency(Opcode::MUL), execLatency(Opcode::ADD));
    EXPECT_GT(execLatency(Opcode::DIV), execLatency(Opcode::MUL));
    EXPECT_GT(execLatency(Opcode::FDIV), execLatency(Opcode::FADD));
    EXPECT_EQ(execLatency(Opcode::SET_DEPENDENCY), 0);
}

TEST(Isa, MemAccessSizes)
{
    EXPECT_EQ(memAccessSize(Opcode::LB), 1);
    EXPECT_EQ(memAccessSize(Opcode::LH), 2);
    EXPECT_EQ(memAccessSize(Opcode::LW), 4);
    EXPECT_EQ(memAccessSize(Opcode::LD), 8);
    EXPECT_EQ(memAccessSize(Opcode::FSD), 8);
    EXPECT_EQ(memAccessSize(Opcode::ADD), 0);
}

TEST(Isa, SourceRegsSkipsZeroAndNone)
{
    Instruction inst;
    inst.op = Opcode::ADD;
    inst.rs1 = 5;
    inst.rs2 = REG_ZERO;
    Reg out[3];
    EXPECT_EQ(sourceRegs(inst, out), 1);
    EXPECT_EQ(out[0], 5);

    Instruction fma;
    fma.op = Opcode::FMADD;
    fma.rs1 = freg(1);
    fma.rs2 = freg(2);
    fma.rs3 = freg(3);
    EXPECT_EQ(sourceRegs(fma, out), 3);
}

TEST(Isa, HasDestExcludesX0)
{
    Instruction inst;
    inst.op = Opcode::ADD;
    inst.rd = REG_ZERO;
    EXPECT_FALSE(inst.hasDest());
    inst.rd = 3;
    EXPECT_TRUE(inst.hasDest());
    inst.rd = freg(0);
    EXPECT_TRUE(inst.hasDest());
    inst.rd = REG_NONE;
    EXPECT_FALSE(inst.hasDest());
}

TEST(SetupEncoding, RoundTrip)
{
    Instruction sb = makeSetBranchId(5);
    EXPECT_EQ(sb.op, Opcode::SET_BRANCH_ID);
    EXPECT_EQ(setBranchIdId(sb), 5);

    Instruction sd = makeSetDependency(37, 6);
    EXPECT_EQ(sd.op, Opcode::SET_DEPENDENCY);
    EXPECT_EQ(setDependencyNum(sd), 37);
    EXPECT_EQ(setDependencyId(sd), 6);
}

TEST(SetupEncoding, ToStringMatchesPaperSyntax)
{
    EXPECT_EQ(makeSetBranchId(1).toString(), "setBranchId 1");
    EXPECT_EQ(makeSetDependency(8, 1).toString(), "setDependency 8 1");
}

TEST(Isa, MemToStringUsesOffsetForm)
{
    Instruction lw;
    lw.op = Opcode::LW;
    lw.rd = 14;
    lw.rs1 = REG_FP;
    lw.imm = -40;
    EXPECT_EQ(lw.toString(), "lw x14, -40(x8)");

    Instruction sw;
    sw.op = Opcode::SW;
    sw.rs2 = 15;
    sw.rs1 = REG_FP;
    sw.imm = -20;
    EXPECT_EQ(sw.toString(), "sw x15, -20(x8)");
}

} // namespace
} // namespace noreba
