/**
 * @file
 * Headline-shape assertions: the qualitative results the paper leads
 * with must hold in this reproduction (with model-appropriate bands —
 * see EXPERIMENTS.md for the quantitative comparison):
 *
 *  - Noreba improves the suite geomean over in-order commit;
 *  - the best case is a pointer-chasing SPEC-like app (mcf) with a
 *    large gain, the worst cases (bzip2, dijkstra, sha) sit near 1.0;
 *  - Noreba captures most of what the Ideal Reconvergence design can;
 *  - high-gain apps commit a large fraction of instructions OoO and
 *    low-gain apps almost none (Figure 8's split).
 */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "sim/runner.h"

namespace noreba {
namespace {

struct Row
{
    double noreba = 0.0;
    double ideal = 0.0;
    double oooFraction = 0.0;
};

const std::map<std::string, Row> &
results()
{
    static const std::map<std::string, Row> rows = [] {
        std::map<std::string, Row> out;
        for (const char *name :
             {"mcf", "CRC32", "libquantum", "bzip2", "dijkstra",
              "sha"}) {
            TraceOptions opts;
            opts.maxDynInsts = 80000;
            TraceBundle bundle = prepareTrace(name, opts);

            CoreConfig ino = skylakeConfig();
            ino.commitMode = CommitMode::InOrder;
            CoreStats sIno = simulate(ino, bundle);

            CoreConfig nor = skylakeConfig();
            nor.commitMode = CommitMode::Noreba;
            CoreStats sNor = simulate(nor, bundle);

            CoreConfig ideal = skylakeConfig();
            ideal.commitMode = CommitMode::IdealReconv;
            CoreStats sIdeal = simulate(ideal, bundle);

            Row row;
            row.noreba = speedup(sIno, sNor);
            row.ideal = speedup(sIno, sIdeal);
            row.oooFraction = sNor.oooCommitFraction();
            out[name] = row;
        }
        return out;
    }();
    return rows;
}

TEST(Headline, GeomeanImprovesOverInOrder)
{
    Geomean geo;
    for (const auto &[name, row] : results())
        geo.sample(row.noreba);
    // Paper: 1.22x over the full suite; this subset mixes best and
    // worst cases, so require a clear improvement.
    EXPECT_GT(geo.value(), 1.10);
    EXPECT_LT(geo.value(), 2.0);
}

TEST(Headline, McfIsTheBestCase)
{
    const auto &r = results();
    EXPECT_GT(r.at("mcf").noreba, 1.35);
    for (const auto &[name, row] : r)
        EXPECT_GE(r.at("mcf").noreba + 0.15, row.noreba) << name;
}

TEST(Headline, WorstCasesStayNearOne)
{
    const auto &r = results();
    for (const char *name : {"bzip2", "dijkstra", "sha"}) {
        EXPECT_GE(r.at(name).noreba, 0.98) << name;
        EXPECT_LT(r.at(name).noreba, 1.10) << name;
    }
}

TEST(Headline, NorebaCapturesMostOfIdeal)
{
    // Figure 9 reports ~99% of ideal at 2x8 queues; our model's
    // same-site instance ordering (a soundness requirement, see
    // EXPERIMENTS.md) costs headroom on delinquency-dense kernels.
    Geomean ratio;
    for (const auto &[name, row] : results()) {
        EXPECT_GT(row.noreba / row.ideal, 0.40) << name;
        ratio.sample(row.noreba / row.ideal);
    }
    EXPECT_GT(ratio.value(), 0.65);
}

TEST(Headline, OooFractionSeparatesWinnersFromLosers)
{
    const auto &r = results();
    // Paper Figure 8: CRC and mcf commit > 20% OoO. Our counter tallies
    // every Condition-5-relaxed commit, including ones past briefly
    // unresolved branches, so the low-gain apps sit above the paper's
    // near-zero bars; the ordering between winners and losers is the
    // reproduced shape.
    EXPECT_GT(r.at("mcf").oooFraction, 0.20);
    EXPECT_GT(r.at("CRC32").oooFraction, 0.20);
    EXPECT_LT(r.at("bzip2").oooFraction, 0.35);
    EXPECT_LT(r.at("dijkstra").oooFraction, 0.35);
    EXPECT_GT(r.at("mcf").oooFraction,
              1.5 * r.at("bzip2").oooFraction);
    EXPECT_GT(r.at("CRC32").oooFraction,
              1.5 * r.at("dijkstra").oooFraction);
}

} // namespace
} // namespace noreba
