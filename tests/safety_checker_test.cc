/**
 * @file
 * Dynamic soundness checker for the whole co-design.
 *
 * An oracle replays the trace in program order and computes, for every
 * dynamic instruction, the exact set of dynamic branch instances its
 * execution truly depends on:
 *  - control: every branch instance whose reconvergence point has not
 *    been reached yet when the instruction executes (plus, transitively,
 *    everything those branches depend on);
 *  - data: propagated through registers and through memory at
 *    word granularity.
 *
 * The property: a non-speculative commit policy (InO-C, NonSpec-OoO,
 * Noreba, IdealReconv) must never commit an instruction while a branch
 * it truly depends on is still unresolved — otherwise a misprediction
 * of that branch would have retired wrong-path state. This validates
 * the single-BranchID guard assignment (including chain merging) end
 * to end, against ground truth the compiler never sees.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "ir/dominance.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace noreba {
namespace {

using testutil::Prepared;
using testutil::prepare;

/** Dense bitset over dynamic branch instances. */
class DepBits
{
  public:
    explicit DepBits(size_t bits = 0) : words_((bits + 63) / 64, 0) {}
    void
    set(int i)
    {
        words_[static_cast<size_t>(i) >> 6] |= 1ull << (i & 63);
    }
    bool
    test(int i) const
    {
        return words_[static_cast<size_t>(i) >> 6] & (1ull << (i & 63));
    }
    void
    orWith(const DepBits &o)
    {
        for (size_t w = 0; w < words_.size(); ++w)
            words_[w] |= o.words_[w];
    }
    void resize(size_t bits) { words_.assign((bits + 63) / 64, 0); }

  private:
    std::vector<uint64_t> words_;
};

/** Ground-truth dependence sets for every trace record. */
class DependenceOracle
{
  public:
    DependenceOracle(const Program &prog, const DynamicTrace &trace)
    {
        const Function &fn = prog.function();
        const Layout &layout = prog.layout();

        // PC -> block id for reconvergence tracking.
        std::unordered_map<uint64_t, int> blockOfPc;
        for (int bb = 0; bb < static_cast<int>(fn.numBlocks()); ++bb)
            blockOfPc[layout.blockPc(bb)] = bb;
        // PC -> block of any instruction (for the branch's block).
        std::unordered_map<uint64_t, int> blockOfAnyPc;
        for (int bb = 0; bb < static_cast<int>(fn.numBlocks()); ++bb)
            for (size_t i = 0; i < fn.block(bb).insts.size(); ++i)
                blockOfAnyPc[layout.pc(bb, static_cast<int>(i))] = bb;

        DominatorTree pdom(fn, DominatorTree::Kind::PostDominators);

        // Number the branch instances.
        numBranches_ = 0;
        instanceOf_.assign(trace.size(), -1);
        for (size_t i = 0; i < trace.size(); ++i)
            if (trace.records[i].isBranchSite())
                instanceOf_[i] = numBranches_++;

        deps_.assign(trace.size(), DepBits(numBranches_));

        DepBits regDeps[NUM_ARCH_REGS];
        for (auto &d : regDeps)
            d.resize(numBranches_);
        std::unordered_map<uint64_t, DepBits> memDeps;

        struct Active
        {
            int instance;
            int reconvBlock; // -1: active forever
            DepBits deps;    // includes itself
        };
        std::vector<Active> active;

        for (size_t i = 0; i < trace.size(); ++i) {
            const TraceRecord &rec = trace.records[i];

            // Entering a block pops every branch that reconverges here.
            auto blockIt = blockOfPc.find(rec.pc);
            if (blockIt != blockOfPc.end()) {
                int bb = blockIt->second;
                active.erase(
                    std::remove_if(active.begin(), active.end(),
                                   [bb](const Active &a) {
                                       return a.reconvBlock == bb;
                                   }),
                    active.end());
            }

            DepBits deps(numBranches_);
            for (const Active &a : active)
                deps.orWith(a.deps);
            for (Reg r : {rec.rs1, rec.rs2, rec.rs3})
                if (r != REG_NONE && r != REG_ZERO)
                    deps.orWith(regDeps[r]);
            if (isLoad(rec.op)) {
                for (uint64_t w = rec.addrOrImm >> 3;
                     w <= (rec.addrOrImm + rec.memSize - 1) >> 3; ++w) {
                    auto it = memDeps.find(w);
                    if (it != memDeps.end())
                        deps.orWith(it->second);
                }
            }

            deps_[i] = deps;

            if (rec.isBranchSite()) {
                int bb = blockOfAnyPc.at(rec.pc);
                Active a;
                a.instance = instanceOf_[i];
                a.reconvBlock = reconvergenceBlock(pdom, bb);
                a.deps = deps;
                a.deps.set(a.instance);
                active.push_back(a);
            }
            if (rec.rd > REG_ZERO || rec.rd >= FREG_BASE)
                regDeps[rec.rd] = deps;
            if (isStore(rec.op)) {
                for (uint64_t w = rec.addrOrImm >> 3;
                     w <= (rec.addrOrImm + rec.memSize - 1) >> 3; ++w) {
                    auto it = memDeps.emplace(w, DepBits(numBranches_))
                                  .first;
                    it->second = deps;
                }
            }
        }
    }

    /** Does record `idx` truly depend on the branch at `branchIdx`? */
    bool
    dependsOn(TraceIdx idx, TraceIdx branchIdx) const
    {
        int inst = instanceOf_[static_cast<size_t>(branchIdx)];
        return inst >= 0 && deps_[static_cast<size_t>(idx)].test(inst);
    }

    int numBranches() const { return numBranches_; }

  private:
    std::vector<DepBits> deps_;
    std::vector<int> instanceOf_;
    int numBranches_ = 0;
};

/** Run `mode` under the oracle and return the number of violations. */
int
violationsFor(const Program &prog, const Prepared &p, CommitMode mode)
{
    DependenceOracle oracle(prog, p.trace);
    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = mode;
    Core core(cfg, p.trace, p.misp);

    int violations = 0;
    core.commitHook = [&](const PipelineView &c, const InFlight &inst) {
        for (const auto &[u, pc] : c.unresolvedBranches()) {
            if (u >= inst.idx)
                break;
            if (oracle.dependsOn(inst.idx, u))
                ++violations;
        }
    };
    core.run();
    return violations;
}

TEST(Safety, DelinquentLoopAllNonSpeculativePolicies)
{
    Program prog = testutil::delinquentLoop(700);
    Prepared p = prepare(prog);
    for (CommitMode mode :
         {CommitMode::InOrder, CommitMode::NonSpecOoO,
          CommitMode::Noreba, CommitMode::IdealReconv}) {
        EXPECT_EQ(violationsFor(prog, p, mode), 0)
            << commitModeName(mode);
    }
}

TEST(Safety, SpeculativeOracleDoesViolate)
{
    // Sanity check that the checker has teeth: the speculative oracle
    // commits across unresolved branches by design.
    Program prog = testutil::delinquentLoop(700);
    Prepared p = prepare(prog);
    EXPECT_GT(violationsFor(prog, p, CommitMode::SpeculativeBR), 0);
}

TEST(Safety, MultiDependenceDiamondStaysSound)
{
    // The chain-merge case: one value depends on two sequential
    // independent branches fed by slow loads.
    Program prog("diamond2");
    Rng rng(17);
    const int64_t n = 1 << 16;
    uint64_t buf = prog.allocGlobal(n * 8);
    for (int64_t i = 0; i < n; ++i)
        prog.poke64(buf + static_cast<uint64_t>(i) * 8, rng.next());
    IRBuilder b(prog);
    int e = b.newBlock();
    int loop = b.newBlock();
    int t1 = b.newBlock();
    int mid = b.newBlock();
    int t2 = b.newBlock();
    int join = b.newBlock();
    int exit = b.newBlock();
    const AliasRegion R = 1;
    b.at(e)
        .li(S2, static_cast<int64_t>(buf))
        .li(S3, 0)
        .li(S4, 600)
        .li(S7, n - 1)
        .li(S8, 0x9e3779b9)
        .fallthrough(loop);
    b.at(loop)
        .mul(T0, S3, S8)
        .srli(T0, T0, 13)
        .and_(T0, T0, S7)
        .slli(T0, T0, 3)
        .add(T0, S2, T0)
        .ld(T1, T0, 0, R)
        .li(T2, 0)
        .li(T3, 0)
        .andi(T4, T1, 3)
        .beq(T4, ZERO, mid, t1);
    b.at(t1).li(T2, 5).jump(mid);
    b.at(mid).andi(T4, T1, 12).beq(T4, ZERO, join, t2);
    b.at(t2).li(T3, 7).jump(join);
    b.at(join)
        .add(S5, T2, T3) // depends on both branches
        .addi(S6, S6, 1) // independent
        .addi(S3, S3, 1)
        .blt(S3, S4, loop, exit);
    b.at(exit).halt();
    prog.finalize();
    runBranchDependencePass(prog);

    Prepared p = prepare(prog);
    EXPECT_EQ(violationsFor(prog, p, CommitMode::Noreba), 0);
    EXPECT_EQ(violationsFor(prog, p, CommitMode::IdealReconv), 0);
}

TEST(Safety, WorkloadSubsetStaysSound)
{
    // End-to-end: real workload generators through the real pass.
    for (const char *name : {"mcf", "CRC32", "dijkstra", "bzip2"}) {
        Program prog = buildWorkload(name);
        runBranchDependencePass(prog);
        Prepared p = prepare(prog, 12000);
        EXPECT_EQ(violationsFor(prog, p, CommitMode::Noreba), 0)
            << name;
    }
}

TEST(Safety, MemoryCarriedDependence)
{
    // A value flows through memory out of the branch region; the
    // consumer must still wait (alias-driven data dependence).
    Program prog("memdep");
    Rng rng(23);
    const int64_t n = 1 << 16;
    uint64_t tab = prog.allocGlobal(n * 8);
    for (int64_t i = 0; i < n; ++i)
        prog.poke64(tab + static_cast<uint64_t>(i) * 8, rng.next());
    uint64_t cell = prog.allocGlobal(64);
    IRBuilder b(prog);
    int e = b.newBlock();
    int loop = b.newBlock();
    int t1 = b.newBlock();
    int join = b.newBlock();
    int exit = b.newBlock();
    const AliasRegion R_TAB = 1, R_CELL = 2;
    b.at(e)
        .li(S2, static_cast<int64_t>(tab))
        .li(S9, static_cast<int64_t>(cell))
        .li(S3, 0)
        .li(S4, 600)
        .li(S7, n - 1)
        .li(S8, 0x9e3779b9)
        .fallthrough(loop);
    b.at(loop)
        .mul(T0, S3, S8)
        .srli(T0, T0, 13)
        .and_(T0, T0, S7)
        .slli(T0, T0, 3)
        .add(T0, S2, T0)
        .ld(T1, T0, 0, R_TAB)
        .andi(T2, T1, 7)
        .sw(ZERO, S9, 0, R_CELL)
        .beq(T2, ZERO, join, t1);
    b.at(t1).sw(T1, S9, 0, R_CELL).jump(join); // memory-carried value
    b.at(join)
        .lw(T3, S9, 0, R_CELL) // depends on the branch via memory
        .add(S5, S5, T3)
        .addi(S3, S3, 1)
        .blt(S3, S4, loop, exit);
    b.at(exit).halt();
    prog.finalize();
    runBranchDependencePass(prog);

    Prepared p = prepare(prog);
    EXPECT_EQ(violationsFor(prog, p, CommitMode::Noreba), 0);
}

} // namespace
} // namespace noreba
