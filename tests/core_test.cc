/**
 * @file
 * Unit/integration tests for the cycle-level core: stage behaviour,
 * resource limits, misprediction recovery, forwarding, fences, and
 * cross-policy conservation invariants.
 */

#include <gtest/gtest.h>

#include "test_util.h"

namespace noreba {
namespace {

using testutil::countedLoop;
using testutil::Prepared;
using testutil::prepare;
using testutil::run;

TEST(Core, CommitsEveryInstructionExactlyOnce)
{
    Program prog = countedLoop(500, [](IRBuilder &b, Program &, int,
                                       int) { b.addi(T0, T0, 1); });
    Prepared p = prepare(prog);
    for (CommitMode mode :
         {CommitMode::InOrder, CommitMode::NonSpecOoO,
          CommitMode::Noreba, CommitMode::IdealReconv,
          CommitMode::SpeculativeBR, CommitMode::SpeculativeFull}) {
        CoreStats s = run(p, mode);
        EXPECT_EQ(s.committedInsts, p.trace.dynInsts)
            << commitModeName(mode);
    }
}

TEST(Core, InOrderNeverCommitsOoO)
{
    Program prog = testutil::delinquentLoop(2000);
    Prepared p = prepare(prog);
    CoreStats s = run(p, CommitMode::InOrder);
    EXPECT_EQ(s.committedOoO, 0u);
}

TEST(Core, SerialChainBoundByLatency)
{
    // 1000 dependent 1-cycle adds cannot finish faster than ~1 IPC.
    Program prog = countedLoop(
        250, [](IRBuilder &b, Program &, int, int) {
            b.add(T0, T0, T0).add(T0, T0, T0).add(T0, T0, T0)
                .add(T0, T0, T0);
        });
    Prepared p = prepare(prog);
    CoreStats s = run(p, CommitMode::InOrder);
    // 4 chained adds + loop overhead per iteration: at least 4 cycles
    // per iteration.
    EXPECT_GE(s.cycles, 4u * 250u);
}

TEST(Core, IndependentWorkReachesSuperscalarIpc)
{
    Program prog = countedLoop(
        400, [](IRBuilder &b, Program &, int, int) {
            b.addi(T0, T0, 1).addi(T1, T1, 1).addi(T2, T2, 1)
                .addi(T3, T3, 1).addi(T4, T4, 1).addi(S2, S2, 1);
        });
    Prepared p = prepare(prog);
    CoreStats s = run(p, CommitMode::InOrder);
    EXPECT_GT(s.ipc(), 1.8);
}

TEST(Core, CommitWidthCapsThroughput)
{
    Program prog = countedLoop(
        400, [](IRBuilder &b, Program &, int, int) {
            b.addi(T0, T0, 1).addi(T1, T1, 1).addi(T2, T2, 1)
                .addi(T3, T3, 1).addi(T4, T4, 1).addi(S2, S2, 1);
        });
    Prepared p = prepare(prog);
    CoreConfig narrow = skylakeConfig();
    narrow.commitWidth = 1;
    CoreStats s = run(p, CommitMode::InOrder, narrow);
    // 8 instructions per iteration at <= 1 commit/cycle.
    EXPECT_GE(s.cycles, 8u * 400u);
}

TEST(Core, MispredictionsCostCycles)
{
    // Same instruction counts; one loop's branch is data-random, the
    // other's is a fixed pattern.
    Rng rng(3);
    auto mk = [&](bool random) {
        Program prog("br");
        uint64_t buf = prog.allocGlobal(8192);
        for (int i = 0; i < 1024; ++i)
            prog.poke64(buf + static_cast<uint64_t>(i) * 8,
                        random ? rng.below(2) : 0);
        IRBuilder b(prog);
        int e = b.newBlock();
        int loop = b.newBlock();
        int yes = b.newBlock();
        int next = b.newBlock();
        int exit = b.newBlock();
        b.at(e)
            .li(S2, static_cast<int64_t>(buf))
            .li(T6, 0)
            .li(T5, 4000)
            .fallthrough(loop);
        b.at(loop)
            .andi(T0, T6, 1023)
            .slli(T0, T0, 3)
            .add(T0, S2, T0)
            .ld(T1, T0, 0, 1)
            .bne(T1, ZERO, yes, next);
        b.at(yes).addi(T2, T2, 1).jump(next);
        b.at(next).addi(T6, T6, 1).blt(T6, T5, loop, exit);
        b.at(exit).halt();
        prog.finalize();
        return prog;
    };
    Program predictable = mk(false);
    Program random = mk(true);
    Prepared pPred = prepare(predictable);
    Prepared pRand = prepare(random);
    CoreStats sPred = run(pPred, CommitMode::InOrder);
    CoreStats sRand = run(pRand, CommitMode::InOrder);
    EXPECT_GT(sRand.mispredicts, sPred.mispredicts + 500);
    EXPECT_GT(sRand.cycles, sPred.cycles);
    EXPECT_GT(sRand.squashes, 100u);
}

TEST(Core, StoreToLoadForwardingBeatsCacheMiss)
{
    // Each iteration stores then immediately loads the same address in
    // a fresh (never cached) line: forwarding keeps it fast.
    auto mk = [](bool forward) {
        Program prog("fwd");
        prog.allocGlobal(64 * 70000);
        IRBuilder b(prog);
        int e = b.newBlock();
        int loop = b.newBlock();
        int exit = b.newBlock();
        b.at(e)
            .li(S2, static_cast<int64_t>(HEAP_BASE))
            .li(T6, 0)
            .li(T5, 3000)
            .fallthrough(loop);
        b.at(loop)
            .slli(T0, T6, 6) // a new cache line every iteration
            .add(T0, S2, T0);
        if (forward)
            b.sd(T6, T0, 0, 1).ld(T1, T0, 0, 1);
        else
            b.ld(T1, T0, 0, 1).sd(T6, T0, 0, 1);
        b.add(T2, T1, T1).addi(T6, T6, 1).blt(T6, T5, loop, exit);
        b.at(exit).halt();
        prog.finalize();
        return prog;
    };
    Program fwd = mk(true);
    Program miss = mk(false);
    CoreConfig cfg = skylakeConfig();
    cfg.prefetcher = false; // keep the miss path honest
    Prepared pf = prepare(fwd);
    Prepared pm = prepare(miss);
    CoreStats sf = run(pf, CommitMode::InOrder, cfg);
    CoreStats sm = run(pm, CommitMode::InOrder, cfg);
    EXPECT_LT(sf.cycles * 2, sm.cycles);
}

TEST(Core, FenceForcesInOrderCommitAroundIt)
{
    Program prog = testutil::delinquentLoop(1500);
    // Rebuild with a fence inside the loop: OoO commit disappears.
    Program fenced("fenced");
    {
        Rng rng(42);
        const int64_t tableLen = 1 << 18;
        uint64_t table = fenced.allocGlobal(tableLen * 8);
        for (int64_t i = 0; i < tableLen; ++i)
            fenced.poke64(table + static_cast<uint64_t>(i) * 8,
                          rng.next());
        IRBuilder b(fenced);
        int entry = b.newBlock();
        int loop = b.newBlock();
        int rare = b.newBlock();
        int next = b.newBlock();
        int exit = b.newBlock();
        b.at(entry)
            .li(S2, static_cast<int64_t>(table))
            .li(S3, 0)
            .li(S4, 1500)
            .li(S7, tableLen - 1)
            .li(S8, 0x9e3779b9)
            .fallthrough(loop);
        b.at(loop)
            .mul(T0, S3, S8)
            .srli(T0, T0, 13)
            .and_(T0, T0, S7)
            .slli(T0, T0, 3)
            .add(T0, S2, T0)
            .ld(T1, T0, 0, 1)
            .andi(T2, T1, 15)
            .beq(T2, ZERO, rare, next);
        b.at(rare).add(S5, S5, T1).jump(next);
        b.at(next)
            .fence()
            .addi(S6, S6, 3)
            .addi(S3, S3, 1)
            .blt(S3, S4, loop, exit);
        b.at(exit).halt();
        fenced.finalize();
        runBranchDependencePass(fenced);
    }
    Prepared pFree = prepare(prog);
    Prepared pFenced = prepare(fenced);
    CoreStats sFree = run(pFree, CommitMode::Noreba);
    CoreStats sFenced = run(pFenced, CommitMode::Noreba);
    EXPECT_GT(sFree.oooCommitFraction(), 0.2);
    // A fence every iteration pins commit to the in-order frontier.
    EXPECT_LT(sFenced.oooCommitFraction(), 0.02);
}

TEST(Core, SetupInstructionsConsumeFetchOnly)
{
    Program prog = testutil::delinquentLoop(1500);
    Prepared p = prepare(prog);
    CoreStats s = run(p, CommitMode::Noreba);
    EXPECT_GT(s.setupFetched, 0u);
    // Committed instructions exclude setups.
    EXPECT_EQ(s.committedInsts, p.trace.dynInsts);
}

TEST(Core, DeterministicAcrossRuns)
{
    Program prog = testutil::delinquentLoop(1200);
    Prepared p = prepare(prog);
    CoreStats a = run(p, CommitMode::Noreba);
    CoreStats c = run(p, CommitMode::Noreba);
    EXPECT_EQ(a.cycles, c.cycles);
    EXPECT_EQ(a.committedOoO, c.committedOoO);
    EXPECT_EQ(a.mispredicts, c.mispredicts);
}

TEST(Core, SquashedWorkIsRefetched)
{
    Program prog = testutil::delinquentLoop(3000);
    Prepared p = prepare(prog);
    CoreStats s = run(p, CommitMode::InOrder);
    if (s.squashes > 0) {
        // Fetch count must exceed the trace length: squashed work is
        // fetched again.
        EXPECT_GT(s.fetched, p.trace.size());
    }
}

TEST(Core, NorebaDropsRefetchedCommits)
{
    Program prog = testutil::delinquentLoop(4000);
    Prepared p = prepare(prog);
    CoreStats s = run(p, CommitMode::Noreba);
    // The delinquent branch mispredicts sometimes; anything already
    // committed beyond its reconvergence point is CIT-dropped.
    EXPECT_GT(s.mispredicts, 0u);
    EXPECT_GT(s.citDrops, 0u);
}

TEST(Core, IcacheMissesStallOnHugeFootprint)
{
    // A program with a long straight-line body exceeding the L1I.
    Program prog("bigcode");
    IRBuilder b(prog);
    int e = b.newBlock("e");
    int loop = b.newBlock("loop");
    int exit = b.newBlock("exit");
    b.at(e).li(T6, 0).li(T5, 12).fallthrough(loop);
    b.at(loop);
    for (int i = 0; i < 12000; ++i) // ~48 KB of code
        b.addi(T0, T0, 1);
    b.addi(T6, T6, 1).blt(T6, T5, loop, exit);
    b.at(exit).halt();
    prog.finalize();
    Prepared p = prepare(prog, 200000);
    CoreStats s = run(p, CommitMode::InOrder);
    EXPECT_GT(s.icacheStallCycles, 100u);
}

} // namespace
} // namespace noreba
