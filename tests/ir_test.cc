/** @file Unit tests for the IR: builder, CFG, verifier, layout. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/program.h"

namespace noreba {
namespace {

Program
simpleLoop()
{
    Program prog("loop");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int body = b.newBlock("body");
    int exit = b.newBlock("exit");
    b.at(entry).li(T0, 0).li(T1, 10).fallthrough(body);
    b.at(body).addi(T0, T0, 1).blt(T0, T1, body, exit);
    b.at(exit).halt();
    prog.finalize();
    return prog;
}

TEST(Ir, CfgEdges)
{
    Program prog = simpleLoop();
    const Function &fn = prog.function();
    EXPECT_EQ(fn.block(0).succs, (std::vector<int>{1}));
    // body -> {body (taken), exit (fallthrough)}
    EXPECT_EQ(fn.block(1).succs.size(), 2u);
    EXPECT_TRUE(fn.block(2).succs.empty());
    EXPECT_EQ(fn.block(1).preds.size(), 2u); // entry + back edge
}

TEST(Ir, VerifierAcceptsValid)
{
    Program prog = simpleLoop();
    EXPECT_EQ(prog.function().verify(), "");
}

TEST(Ir, VerifierRejectsControlMidBlock)
{
    Program prog("bad");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e).jump(e).nop().halt();
    prog.function().computeCFG();
    EXPECT_NE(prog.function().verify().find("not at block end"),
              std::string::npos);
}

TEST(Ir, VerifierRejectsMissingFallthrough)
{
    Program prog("bad");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e).nop(); // no terminator, no fallthrough
    prog.function().computeCFG();
    EXPECT_NE(prog.function().verify(), "");
}

TEST(Ir, VerifierRequiresHalt)
{
    Program prog("bad");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e).jump(e); // infinite loop, no HALT anywhere
    prog.function().computeCFG();
    EXPECT_NE(prog.function().verify().find("HALT"), std::string::npos);
}

TEST(Ir, VerifierRejectsRegionCrossingBlock)
{
    Program prog("bad");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e).emit(makeSetDependency(5, 1)).nop().halt();
    prog.function().computeCFG();
    EXPECT_NE(prog.function().verify().find("crosses block"),
              std::string::npos);
}

TEST(Ir, VerifierRejectsJalrWithoutTargets)
{
    Program prog("bad");
    IRBuilder b(prog);
    int e = b.newBlock();
    Instruction j;
    j.op = Opcode::JALR;
    j.rs1 = T0;
    b.at(e).emit(j);
    prog.function().computeCFG();
    EXPECT_NE(prog.function().verify().find("jalr"), std::string::npos);
}

TEST(Ir, LayoutAssignsConsecutivePcs)
{
    Program prog = simpleLoop();
    const Layout &layout = prog.layout();
    EXPECT_EQ(layout.blockPc(0), CODE_BASE);
    EXPECT_EQ(layout.pc(0, 1), CODE_BASE + 4);
    // block 1 starts right after block 0's two instructions.
    EXPECT_EQ(layout.blockPc(1), CODE_BASE + 8);
    EXPECT_EQ(layout.codeBytes(),
              prog.function().numInsts() * INST_BYTES);
}

TEST(Ir, AllocGlobalIsAlignedAndDisjoint)
{
    Program prog("data");
    uint64_t a = prog.allocGlobal(100);
    uint64_t b = prog.allocGlobal(8);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(Ir, PokeWritesIntoSegments)
{
    Program prog("data");
    uint64_t base = prog.allocGlobal(64);
    prog.poke64(base + 8, 0x1122334455667788ull);
    prog.poke32(base + 16, 0xdeadbeef);
    prog.pokeDouble(base + 24, 1.5);
    bool found = false;
    for (const auto &seg : prog.dataSegments()) {
        if (seg.base == base) {
            found = true;
            EXPECT_EQ(seg.bytes[8], 0x88);
            EXPECT_EQ(seg.bytes[15], 0x11);
            EXPECT_EQ(seg.bytes[16], 0xef);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Ir, FunctionToStringShowsLabels)
{
    Program prog = simpleLoop();
    std::string text = prog.function().toString();
    EXPECT_NE(text.find("entry:"), std::string::npos);
    EXPECT_NE(text.find("-> body"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(Ir, NumInstsCountsAllBlocks)
{
    Program prog = simpleLoop();
    EXPECT_EQ(prog.function().numInsts(), 5u);
}

} // namespace
} // namespace noreba
