/** @file Unit tests for reaching definitions and the alias oracle. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/reaching_defs.h"

namespace noreba {
namespace {

TEST(ReachingDefs, StraightLineKill)
{
    Program prog("straight");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e)
        .li(T0, 1)      // def 0
        .li(T0, 2)      // def 1 kills def 0
        .add(T1, T0, T0) // use of T0
        .halt();
    prog.finalize();
    ReachingDefs rd(prog.function());

    auto scan = rd.scan(e);
    scan.advance(); // past def 0
    scan.advance(); // past def 1
    std::vector<int> defs;
    scan.reachingDefs(T0, defs);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(rd.def(defs[0]).idx, 1);
}

TEST(ReachingDefs, MergeAtJoin)
{
    Program prog("joiny");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int thenB = b.newBlock("then");
    int elseB = b.newBlock("else");
    int join = b.newBlock("join");
    b.at(entry).li(T1, 0).beq(T1, ZERO, elseB, thenB);
    b.at(thenB).li(T0, 1).jump(join);  // def A
    b.at(elseB).li(T0, 2).jump(join);  // def B
    b.at(join).add(T2, T0, T0).halt(); // both defs reach
    prog.finalize();
    ReachingDefs rd(prog.function());

    auto scan = rd.scan(join);
    std::vector<int> defs;
    scan.reachingDefs(T0, defs);
    EXPECT_EQ(defs.size(), 2u);
}

TEST(ReachingDefs, LoopCarriedDefReachesBlockTop)
{
    Program prog("loopy");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int body = b.newBlock("body");
    int exit = b.newBlock("exit");
    b.at(entry).li(T0, 0).fallthrough(body);
    b.at(body).addi(T0, T0, 1).slti(T1, T0, 5).bne(T1, ZERO, body, exit);
    b.at(exit).halt();
    prog.finalize();
    ReachingDefs rd(prog.function());

    // At the top of body, both the entry def and the loop def reach.
    auto scan = rd.scan(body);
    std::vector<int> defs;
    scan.reachingDefs(T0, defs);
    EXPECT_EQ(defs.size(), 2u);
}

TEST(ReachingDefs, X0IsNeverDefined)
{
    Program prog("zero");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e).add(ZERO, T0, T0).add(T1, ZERO, T0).halt();
    prog.finalize();
    ReachingDefs rd(prog.function());

    auto scan = rd.scan(e);
    scan.advance();
    std::vector<int> defs;
    scan.reachingDefs(ZERO, defs);
    EXPECT_TRUE(defs.empty());
}

TEST(ReachingDefs, DefIdAtMatchesSites)
{
    Program prog("ids");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e).li(T0, 1).nop().li(T1, 2).halt();
    prog.finalize();
    ReachingDefs rd(prog.function());
    EXPECT_GE(rd.defIdAt(e, 0), 0);
    EXPECT_EQ(rd.defIdAt(e, 1), -1); // nop defines nothing
    EXPECT_GE(rd.defIdAt(e, 2), 0);
    EXPECT_EQ(rd.numDefs(), 2);
}

/** @name mayAlias @{ */

Instruction
memInst(Opcode op, Reg base, int64_t off, AliasRegion region)
{
    Instruction inst;
    inst.op = op;
    inst.rs1 = base;
    inst.imm = off;
    inst.aliasRegion = region;
    if (isLoad(op))
        inst.rd = T0;
    else
        inst.rs2 = T0;
    return inst;
}

TEST(MayAlias, DisjointStackSlots)
{
    Instruction a = memInst(Opcode::SW, REG_SP, -20, 0);
    Instruction b = memInst(Opcode::LW, REG_SP, -24, 0);
    EXPECT_FALSE(mayAlias(a, b));
}

TEST(MayAlias, SameStackSlot)
{
    Instruction a = memInst(Opcode::SW, REG_SP, -20, 0);
    Instruction b = memInst(Opcode::LW, REG_SP, -20, 0);
    EXPECT_TRUE(mayAlias(a, b));
}

TEST(MayAlias, PartialOverlapOnStack)
{
    Instruction a = memInst(Opcode::SD, REG_SP, -24, 0); // [-24,-16)
    Instruction b = memInst(Opcode::LW, REG_SP, -20, 0); // [-20,-16)
    EXPECT_TRUE(mayAlias(a, b));
}

TEST(MayAlias, DistinctRegionsDontAlias)
{
    Instruction a = memInst(Opcode::SW, T1, 0, 1);
    Instruction b = memInst(Opcode::LW, T2, 0, 2);
    EXPECT_FALSE(mayAlias(a, b));
}

TEST(MayAlias, SameRegionAliases)
{
    Instruction a = memInst(Opcode::SW, T1, 0, 3);
    Instruction b = memInst(Opcode::LW, T2, 64, 3);
    EXPECT_TRUE(mayAlias(a, b));
}

TEST(MayAlias, UnknownAliasesEverything)
{
    Instruction a = memInst(Opcode::SW, T1, 0, ALIAS_UNKNOWN);
    Instruction b = memInst(Opcode::LW, T2, 0, 7);
    Instruction c = memInst(Opcode::LW, REG_SP, -8, 0);
    EXPECT_TRUE(mayAlias(a, b));
    EXPECT_TRUE(mayAlias(a, c));
}

TEST(MayAlias, StackNeverAliasesHeapRegion)
{
    Instruction a = memInst(Opcode::SW, REG_SP, -8, 0);
    Instruction b = memInst(Opcode::LW, T2, 0, 5);
    EXPECT_FALSE(mayAlias(a, b));
}

TEST(MayAlias, NonMemoryNeverAliases)
{
    Instruction a;
    a.op = Opcode::ADD;
    Instruction b = memInst(Opcode::LW, T2, 0, ALIAS_UNKNOWN);
    EXPECT_FALSE(mayAlias(a, b));
}

/** @} */

} // namespace
} // namespace noreba
