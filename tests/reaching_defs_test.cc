/** @file Unit tests for reaching definitions and the alias oracle. */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "analysis/annotation_checker.h"
#include "common/rng.h"
#include "ir/builder.h"
#include "ir/dataflow.h"
#include "ir/dominance.h"
#include "ir/reaching_defs.h"

namespace noreba {
namespace {

TEST(ReachingDefs, StraightLineKill)
{
    Program prog("straight");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e)
        .li(T0, 1)      // def 0
        .li(T0, 2)      // def 1 kills def 0
        .add(T1, T0, T0) // use of T0
        .halt();
    prog.finalize();
    ReachingDefs rd(prog.function());

    auto scan = rd.scan(e);
    scan.advance(); // past def 0
    scan.advance(); // past def 1
    std::vector<int> defs;
    scan.reachingDefs(T0, defs);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(rd.def(defs[0]).idx, 1);
}

TEST(ReachingDefs, MergeAtJoin)
{
    Program prog("joiny");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int thenB = b.newBlock("then");
    int elseB = b.newBlock("else");
    int join = b.newBlock("join");
    b.at(entry).li(T1, 0).beq(T1, ZERO, elseB, thenB);
    b.at(thenB).li(T0, 1).jump(join);  // def A
    b.at(elseB).li(T0, 2).jump(join);  // def B
    b.at(join).add(T2, T0, T0).halt(); // both defs reach
    prog.finalize();
    ReachingDefs rd(prog.function());

    auto scan = rd.scan(join);
    std::vector<int> defs;
    scan.reachingDefs(T0, defs);
    EXPECT_EQ(defs.size(), 2u);
}

TEST(ReachingDefs, LoopCarriedDefReachesBlockTop)
{
    Program prog("loopy");
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int body = b.newBlock("body");
    int exit = b.newBlock("exit");
    b.at(entry).li(T0, 0).fallthrough(body);
    b.at(body).addi(T0, T0, 1).slti(T1, T0, 5).bne(T1, ZERO, body, exit);
    b.at(exit).halt();
    prog.finalize();
    ReachingDefs rd(prog.function());

    // At the top of body, both the entry def and the loop def reach.
    auto scan = rd.scan(body);
    std::vector<int> defs;
    scan.reachingDefs(T0, defs);
    EXPECT_EQ(defs.size(), 2u);
}

TEST(ReachingDefs, X0IsNeverDefined)
{
    Program prog("zero");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e).add(ZERO, T0, T0).add(T1, ZERO, T0).halt();
    prog.finalize();
    ReachingDefs rd(prog.function());

    auto scan = rd.scan(e);
    scan.advance();
    std::vector<int> defs;
    scan.reachingDefs(ZERO, defs);
    EXPECT_TRUE(defs.empty());
}

TEST(ReachingDefs, DefIdAtMatchesSites)
{
    Program prog("ids");
    IRBuilder b(prog);
    int e = b.newBlock();
    b.at(e).li(T0, 1).nop().li(T1, 2).halt();
    prog.finalize();
    ReachingDefs rd(prog.function());
    EXPECT_GE(rd.defIdAt(e, 0), 0);
    EXPECT_EQ(rd.defIdAt(e, 1), -1); // nop defines nothing
    EXPECT_GE(rd.defIdAt(e, 2), 0);
    EXPECT_EQ(rd.numDefs(), 2);
}

/** @name mayAlias @{ */

Instruction
memInst(Opcode op, Reg base, int64_t off, AliasRegion region)
{
    Instruction inst;
    inst.op = op;
    inst.rs1 = base;
    inst.imm = off;
    inst.aliasRegion = region;
    if (isLoad(op))
        inst.rd = T0;
    else
        inst.rs2 = T0;
    return inst;
}

TEST(MayAlias, DisjointStackSlots)
{
    Instruction a = memInst(Opcode::SW, REG_SP, -20, 0);
    Instruction b = memInst(Opcode::LW, REG_SP, -24, 0);
    EXPECT_FALSE(mayAlias(a, b));
}

TEST(MayAlias, SameStackSlot)
{
    Instruction a = memInst(Opcode::SW, REG_SP, -20, 0);
    Instruction b = memInst(Opcode::LW, REG_SP, -20, 0);
    EXPECT_TRUE(mayAlias(a, b));
}

TEST(MayAlias, PartialOverlapOnStack)
{
    Instruction a = memInst(Opcode::SD, REG_SP, -24, 0); // [-24,-16)
    Instruction b = memInst(Opcode::LW, REG_SP, -20, 0); // [-20,-16)
    EXPECT_TRUE(mayAlias(a, b));
}

TEST(MayAlias, DistinctRegionsDontAlias)
{
    Instruction a = memInst(Opcode::SW, T1, 0, 1);
    Instruction b = memInst(Opcode::LW, T2, 0, 2);
    EXPECT_FALSE(mayAlias(a, b));
}

TEST(MayAlias, SameRegionAliases)
{
    Instruction a = memInst(Opcode::SW, T1, 0, 3);
    Instruction b = memInst(Opcode::LW, T2, 64, 3);
    EXPECT_TRUE(mayAlias(a, b));
}

TEST(MayAlias, UnknownAliasesEverything)
{
    Instruction a = memInst(Opcode::SW, T1, 0, ALIAS_UNKNOWN);
    Instruction b = memInst(Opcode::LW, T2, 0, 7);
    Instruction c = memInst(Opcode::LW, REG_SP, -8, 0);
    EXPECT_TRUE(mayAlias(a, b));
    EXPECT_TRUE(mayAlias(a, c));
}

TEST(MayAlias, StackNeverAliasesHeapRegion)
{
    Instruction a = memInst(Opcode::SW, REG_SP, -8, 0);
    Instruction b = memInst(Opcode::LW, T2, 0, 5);
    EXPECT_FALSE(mayAlias(a, b));
}

TEST(MayAlias, NonMemoryNeverAliases)
{
    Instruction a;
    a.op = Opcode::ADD;
    Instruction b = memInst(Opcode::LW, T2, 0, ALIAS_UNKNOWN);
    EXPECT_FALSE(mayAlias(a, b));
}

/** @} */

/**
 * @defgroup engine Generic dataflow engine (ir/dataflow.h)
 *
 * Direct unit tests of the worklist solver, plus bit-identity checks
 * of the two production ports (ReachingDefs, the checker's DomSets)
 * against independent reference solvers: the round-robin set-dataflow
 * loops the ported code replaced. A monotone gen/kill frame has a
 * unique fixpoint, so the engine must reproduce them exactly.
 * @{
 */

TEST(DataflowEngine, ForwardUnionChain)
{
    // 0 -> 1 -> 2; bit b is generated at node b, node 1 kills bit 0.
    DataflowGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    GenKillProblem p;
    p.direction = Direction::Forward;
    p.meet = Meet::Union;
    p.numBits = 3;
    p.resize(3);
    for (int n = 0; n < 3; ++n)
        p.setGen(n, static_cast<size_t>(n));
    p.setKill(1, 0);
    DataflowResult r = solveDataflow(g, p);
    EXPECT_TRUE(r.outTest(0, 0));
    EXPECT_TRUE(r.inTest(1, 0));
    EXPECT_FALSE(r.outTest(1, 0)); // killed
    EXPECT_TRUE(r.outTest(1, 1));
    EXPECT_FALSE(r.outTest(2, 0));
    EXPECT_TRUE(r.outTest(2, 1));
    EXPECT_TRUE(r.outTest(2, 2));
}

TEST(DataflowEngine, BackwardUnionLiveness)
{
    // Diamond 0 -> {1,2} -> 3. A "use" at node n is GEN, a "def" is
    // KILL; for Backward problems in = live-out, out = live-in.
    DataflowGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    GenKillProblem p;
    p.direction = Direction::Backward;
    p.meet = Meet::Union;
    p.numBits = 2;
    p.resize(4);
    p.setGen(3, 0);  // bit 0 used at the join
    p.setKill(1, 0); // ... but redefined on the left arm
    p.setGen(2, 1);  // bit 1 used on the right arm only
    DataflowResult r = solveDataflow(g, p);
    EXPECT_TRUE(r.inTest(0, 0));  // live-out of 0 via the right arm
    EXPECT_TRUE(r.outTest(0, 0)); // live-in of 0
    EXPECT_FALSE(r.outTest(1, 0)); // killed before the use
    EXPECT_TRUE(r.outTest(2, 0));
    EXPECT_TRUE(r.inTest(0, 1));
    EXPECT_FALSE(r.inTest(1, 1)); // bit 1 dead past node 2
}

TEST(DataflowEngine, IntersectWithPinnedBoundary)
{
    // Dominance shape: diamond 0 -> {1,2} -> 3, gen(n) = {n}, node 0
    // pinned as the boundary. out(n) is then dom(n).
    DataflowGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    GenKillProblem p;
    p.direction = Direction::Forward;
    p.meet = Meet::Intersect;
    p.numBits = 4;
    p.resize(4);
    for (int n = 0; n < 4; ++n)
        p.setGen(n, static_cast<size_t>(n));
    p.boundary.push_back(0);
    DataflowResult r = solveDataflow(g, p);
    EXPECT_TRUE(r.outTest(3, 0));  // entry dominates the join
    EXPECT_FALSE(r.outTest(3, 1)); // neither arm does
    EXPECT_FALSE(r.outTest(3, 2));
    EXPECT_TRUE(r.outTest(3, 3));
    EXPECT_TRUE(r.outTest(1, 0));
    EXPECT_FALSE(r.outTest(1, 2));
}

TEST(DataflowEngine, IntersectUnreachedNodeKeepsMeetIdentity)
{
    // A node with no incoming edges under Intersect keeps the full
    // set (tail-masked) — exactly how the DomSets port leaves
    // unreachable blocks before resetting them to {self}.
    DataflowGraph g(2);
    g.addEdge(0, 0); // self loop so node 0 is non-trivial
    GenKillProblem p;
    p.direction = Direction::Forward;
    p.meet = Meet::Intersect;
    p.numBits = 70; // spans two words, exercises the tail mask
    p.resize(2);
    DataflowResult r = solveDataflow(g, p);
    for (size_t bit = 0; bit < 70; ++bit)
        EXPECT_TRUE(r.outTest(1, bit)) << bit;
    EXPECT_EQ(r.outRow(1)[1] >> 6, 0u); // bits >= 70 stay clear
}

/**
 * A random but well-formed CFG: a handful of blocks of ALU traffic
 * with arbitrary branch/jump/halt terminators (loops, diamonds, and
 * unreachable blocks all arise). Purely static fodder — never
 * executed.
 */
Program
randomCfg(uint64_t seed)
{
    Rng rng(seed);
    Program prog("randcfg");
    IRBuilder b(prog);
    const int n = 4 + static_cast<int>(rng.below(5));
    std::vector<int> ids;
    for (int i = 0; i < n; ++i)
        ids.push_back(b.newBlock());
    const Reg pool[] = {T0, T1, T2, S2, S3, S4};
    for (int i = 0; i < n; ++i) {
        b.at(ids[i]);
        const int len = 1 + static_cast<int>(rng.below(4));
        for (int k = 0; k < len; ++k) {
            Reg rd = pool[rng.below(6)];
            if (rng.below(3) == 0)
                b.li(rd, static_cast<int64_t>(rng.below(100)));
            else
                b.add(rd, pool[rng.below(6)], pool[rng.below(6)]);
        }
        int t = ids[rng.below(static_cast<uint64_t>(n))];
        int f = ids[rng.below(static_cast<uint64_t>(n))];
        // The last block always halts so the program verifies.
        switch (i == n - 1 ? 0 : rng.below(4)) {
        case 0:
            b.halt();
            break;
        case 1:
            b.jump(t);
            break;
        default:
            b.beq(pool[rng.below(6)], pool[rng.below(6)], t, f);
            break;
        }
    }
    prog.finalize();
    return prog;
}

/** Reference reaching defs: classic round-robin iteration over def
 *  sites identified by (bb, idx) so the comparison is numbering-
 *  agnostic. Returns, per block, the set of (bb, idx) defs of `reg`
 *  reaching the block top. */
std::vector<std::set<std::pair<int, int>>>
referenceReachingAtTop(const Function &fn, Reg reg)
{
    const int n = static_cast<int>(fn.numBlocks());
    struct Def { int bb, idx; Reg reg; };
    std::vector<Def> defs;
    for (int bb = 0; bb < n; ++bb) {
        const auto &insts = fn.block(bb).insts;
        for (int i = 0; i < static_cast<int>(insts.size()); ++i)
            if (insts[i].hasDest())
                defs.push_back({bb, i, insts[i].rd});
    }
    const int nd = static_cast<int>(defs.size());
    std::vector<std::set<int>> gen(static_cast<size_t>(n)),
        out(static_cast<size_t>(n)), in(static_cast<size_t>(n));
    std::vector<std::set<int>> killRegs(static_cast<size_t>(n));
    for (int bb = 0; bb < n; ++bb) {
        std::map<Reg, int> last;
        for (int d = 0; d < nd; ++d)
            if (defs[static_cast<size_t>(d)].bb == bb)
                last[defs[static_cast<size_t>(d)].reg] = d;
        for (auto &[r, d] : last) {
            gen[static_cast<size_t>(bb)].insert(d);
            killRegs[static_cast<size_t>(bb)].insert(r);
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (int bb = 0; bb < n; ++bb) {
            std::set<int> newIn;
            for (int p : fn.block(bb).preds)
                for (int d : out[static_cast<size_t>(p)])
                    newIn.insert(d);
            std::set<int> newOut = gen[static_cast<size_t>(bb)];
            for (int d : newIn)
                if (!killRegs[static_cast<size_t>(bb)].count(
                        defs[static_cast<size_t>(d)].reg))
                    newOut.insert(d);
            if (newIn != in[static_cast<size_t>(bb)] ||
                newOut != out[static_cast<size_t>(bb)]) {
                in[static_cast<size_t>(bb)] = std::move(newIn);
                out[static_cast<size_t>(bb)] = std::move(newOut);
                changed = true;
            }
        }
    }
    std::vector<std::set<std::pair<int, int>>> res(
        static_cast<size_t>(n));
    for (int bb = 0; bb < n; ++bb)
        for (int d : in[static_cast<size_t>(bb)])
            if (defs[static_cast<size_t>(d)].reg == reg)
                res[static_cast<size_t>(bb)].emplace(
                    defs[static_cast<size_t>(d)].bb,
                    defs[static_cast<size_t>(d)].idx);
    return res;
}

TEST(DataflowEngine, ReachingDefsMatchesRoundRobinReference)
{
    const Reg pool[] = {T0, T1, T2, S2, S3, S4};
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        Program prog = randomCfg(seed);
        const Function &fn = prog.function();
        ReachingDefs rd(fn);
        for (Reg reg : pool) {
            auto ref = referenceReachingAtTop(fn, reg);
            for (int bb = 0; bb < static_cast<int>(fn.numBlocks());
                 ++bb) {
                std::vector<int> ids;
                rd.scan(bb).reachingDefs(reg, ids);
                std::set<std::pair<int, int>> got;
                for (int id : ids)
                    got.emplace(rd.def(id).bb, rd.def(id).idx);
                EXPECT_EQ(got, ref[static_cast<size_t>(bb)])
                    << "seed " << seed << " reg " << reg << " bb "
                    << bb;
            }
        }
    }
}

/** Reference (post)dominators: round-robin set dataflow over the
 *  checker's walk graph (virtual entry feeding fn.entry(), or a
 *  virtual exit fed by every HALT block on the reversed CFG) — the
 *  bespoke loop DomSets used before the engine port. */
std::vector<std::set<int>>
referenceDomSets(const Function &fn, bool post)
{
    const int n = static_cast<int>(fn.numBlocks());
    const int root = n;
    std::vector<std::vector<int>> preds(static_cast<size_t>(n + 1));
    std::vector<bool> reach(static_cast<size_t>(n + 1), false);
    std::vector<int> stack{root};
    std::vector<std::vector<int>> succs(static_cast<size_t>(n + 1));
    if (!post) {
        preds[static_cast<size_t>(fn.entry())].push_back(root);
        succs[static_cast<size_t>(root)].push_back(fn.entry());
        for (int b = 0; b < n; ++b)
            for (int s : fn.block(b).succs) {
                preds[static_cast<size_t>(s)].push_back(b);
                succs[static_cast<size_t>(b)].push_back(s);
            }
    } else {
        for (int b = 0; b < n; ++b) {
            const Instruction *term = fn.block(b).terminator();
            if (term && term->op == Opcode::HALT) {
                preds[static_cast<size_t>(b)].push_back(root);
                succs[static_cast<size_t>(root)].push_back(b);
            }
            for (int s : fn.block(b).succs) {
                preds[static_cast<size_t>(b)].push_back(s);
                succs[static_cast<size_t>(s)].push_back(b);
            }
        }
    }
    reach[static_cast<size_t>(root)] = true;
    while (!stack.empty()) {
        int b = stack.back();
        stack.pop_back();
        for (int s : succs[static_cast<size_t>(b)])
            if (!reach[static_cast<size_t>(s)]) {
                reach[static_cast<size_t>(s)] = true;
                stack.push_back(s);
            }
    }
    std::set<int> all;
    for (int b = 0; b <= n; ++b)
        all.insert(b);
    std::vector<std::set<int>> dom(static_cast<size_t>(n + 1), all);
    dom[static_cast<size_t>(root)] = {root};
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = 0; b < n + 1; ++b) {
            if (b == root || !reach[static_cast<size_t>(b)])
                continue;
            std::set<int> nd = all;
            for (int p : preds[static_cast<size_t>(b)]) {
                if (!reach[static_cast<size_t>(p)])
                    continue;
                std::set<int> isect;
                for (int x : dom[static_cast<size_t>(p)])
                    if (nd.count(x))
                        isect.insert(x);
                nd = std::move(isect);
            }
            nd.insert(b);
            if (nd != dom[static_cast<size_t>(b)]) {
                dom[static_cast<size_t>(b)] = std::move(nd);
                changed = true;
            }
        }
    }
    for (int b = 0; b < n; ++b)
        if (!reach[static_cast<size_t>(b)])
            dom[static_cast<size_t>(b)] = {b};
    for (auto &s : dom)
        s.erase(root);
    dom.resize(static_cast<size_t>(n));
    return dom;
}

TEST(DataflowEngine, DomSetsMatchRoundRobinReference)
{
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        Program prog = randomCfg(seed);
        const Function &fn = prog.function();
        const int n = static_cast<int>(fn.numBlocks());
        for (bool post : {false, true}) {
            DomSets ds(fn, post);
            DominatorTree tree(fn, post
                                       ? DominatorTree::Kind::
                                             PostDominators
                                       : DominatorTree::Kind::
                                             Dominators);
            auto ref = referenceDomSets(fn, post);
            for (int b = 0; b < n; ++b) {
                EXPECT_EQ(ds.idom(b), tree.idom(b))
                    << "seed " << seed << " post " << post << " bb "
                    << b;
                for (int a = 0; a < n; ++a)
                    EXPECT_EQ(ds.dominates(a, b),
                              ref[static_cast<size_t>(b)].count(a) >
                                  0)
                        << "seed " << seed << " post " << post << " "
                        << a << " dom " << b;
            }
        }
    }
}

/** @} */

} // namespace
} // namespace noreba
