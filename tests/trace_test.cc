/**
 * @file
 * Tests for the pipeline event-tracing subsystem: the EventLog ring,
 * the commit-stall attribution invariants (every cycle charged to
 * exactly one cause, across the full workload registry and every
 * commit mode), bit-identity of CoreStats with tracing on vs off, and
 * the Chrome-trace exporter's schema (round-tripped through the
 * repo's own JSON parser).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "sim/sweep.h"
#include "test_util.h"
#include "trace/chrome_trace.h"
#include "trace/event_log.h"
#include "uarch/stats.h"

using namespace noreba;

namespace {

const CommitMode ALL_MODES[] = {
    CommitMode::InOrder,       CommitMode::NonSpecOoO,
    CommitMode::Noreba,        CommitMode::IdealReconv,
    CommitMode::SpeculativeBR, CommitMode::SpeculativeFull,
    CommitMode::ValidationBuffer,
};

/**
 * The attribution contract: the six cause counters partition the stall
 * cycles, and stall + full-width cycles partition total cycles. The
 * core also panics on violation (uarch/core.cc), so this asserts the
 * same property externally, on the returned stats.
 */
void
expectPartition(const CoreStats &s, const std::string &label)
{
    const uint64_t causes = s.stallEmptyCycles + s.stallHeadBranchCycles +
                            s.stallHeadMemCycles + s.stallHeadExecCycles +
                            s.stallFenceCycles + s.stallStructuralCycles;
    EXPECT_EQ(causes, s.commitStallCycles) << label;
    EXPECT_EQ(s.commitStallCycles + s.commitWidthFullCycles, s.cycles)
        << label;
}

TEST(EventLog, RingOverwritesOldestAndCountsDrops)
{
    EventLog log(4);
    EXPECT_EQ(log.capacity(), 4u);
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.dropped(), 0u);

    for (uint64_t c = 0; c < 10; ++c)
        log.emit(c, TraceEventType::Fetch, static_cast<TraceIdx>(c),
                 1000 + c);
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.totalEmitted(), 10u);
    EXPECT_EQ(log.dropped(), 6u);

    // snapshot() is oldest-first over the retained suffix.
    std::vector<TraceEvent> events = log.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].cycle, 6 + i);
        EXPECT_EQ(events[i].pc, 1006 + i);
        EXPECT_EQ(events[i].type, TraceEventType::Fetch);
    }

    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.totalEmitted(), 0u);
    EXPECT_TRUE(log.snapshot().empty());
}

TEST(EventLog, ZeroCapacityClampsToOne)
{
    EventLog log(0);
    EXPECT_EQ(log.capacity(), 1u);
    log.emit(1, TraceEventType::Commit, 0, 0x40);
    log.emit(2, TraceEventType::Commit, 1, 0x44);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.snapshot()[0].cycle, 2u);
    EXPECT_EQ(log.dropped(), 1u);
}

TEST(EventNames, CoverEveryEnumerator)
{
    EXPECT_STREQ(traceEventTypeName(TraceEventType::Fetch), "fetch");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::Commit), "commit");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::CommitStall),
                 "commit-stall");
    EXPECT_STREQ(stallCauseName(StallCause::Empty), "empty-window");
    EXPECT_STREQ(stallCauseName(StallCause::HeadBranch), "head-branch");
    EXPECT_STREQ(stallCauseName(StallCause::Structural), "structural");
    EXPECT_STREQ(stallCauseName(StallCause::WidthExhausted),
                 "width-exhausted");
}

// The headline invariant, at full breadth: every workload in the
// registry under every commit mode. Short traces keep the 140-job
// cross product fast; the sweep runs it in parallel.
TEST(StallAttribution, PartitionsCyclesAcrossRegistryAndModes)
{
    TraceOptions opts;
    opts.maxDynInsts = 8000;
    std::vector<SweepJob> jobs;
    for (const auto &desc : workloadRegistry()) {
        for (CommitMode mode : ALL_MODES) {
            CoreConfig cfg = skylakeConfig();
            cfg.commitMode = mode;
            jobs.push_back(SweepJob{desc.name, cfg, opts});
        }
    }
    BundleCache cache;
    std::vector<SweepResult> results = SweepRunner(8, &cache).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (const SweepResult &r : results) {
        expectPartition(r.stats,
                        r.job.workload + "/" +
                            commitModeName(r.job.cfg.commitMode));
        EXPECT_GT(r.stats.cycles, 0u) << r.job.workload;
    }
}

TEST(StallAttribution, HoldsWithEarlyCommitLoads)
{
    Program prog = testutil::delinquentLoop(1500);
    testutil::Prepared p = testutil::prepare(prog);
    for (CommitMode mode : {CommitMode::Noreba, CommitMode::IdealReconv}) {
        CoreConfig cfg = skylakeConfig();
        cfg.earlyCommitLoads = true;
        CoreStats s = testutil::run(p, mode, cfg);
        expectPartition(s, std::string("ECL/") + commitModeName(mode));
    }
}

// Sanity on the taxonomy itself: the delinquent loop blocks in-order
// commit behind its data-dependent branch and its missing loads, so
// both the branch bucket and the memory/execute buckets must be
// populated (and dominate idle-frontend noise).
TEST(StallAttribution, DelinquentLoopChargesBranchAndMemory)
{
    Program prog = testutil::delinquentLoop(3000);
    testutil::Prepared p = testutil::prepare(prog);
    CoreStats s = testutil::run(p, CommitMode::InOrder);
    expectPartition(s, "delinquent/InOrder");
    EXPECT_GT(s.commitStallCycles, 0u);
    EXPECT_GT(s.stallHeadBranchCycles, 0u);
    EXPECT_GT(s.stallHeadMemCycles + s.stallHeadExecCycles, 0u);
}

// Turning tracing on must not perturb a single counter: the emission
// sites read pipeline state but never write stats. Compares every
// CORE_STATS_FIELDS entry so a future counter is covered automatically.
TEST(EventTrace, StatsBitIdenticalWithTracingOnAndOff)
{
    TraceOptions opts;
    opts.maxDynInsts = 20000;
    TraceBundle bundle = prepareTrace("mcf", opts);
    for (CommitMode mode : ALL_MODES) {
        CoreConfig cfg = skylakeConfig();
        cfg.commitMode = mode;
        CoreStats plain = simulate(cfg, bundle);
        EventLog log;
        CoreStats traced = simulate(cfg, bundle, &log);
        EXPECT_GT(log.totalEmitted(), 0u) << commitModeName(mode);
        for (const CoreStatsField &f : CORE_STATS_FIELDS) {
            if (f.counter)
                EXPECT_EQ(plain.*f.counter, traced.*f.counter)
                    << commitModeName(mode) << ": " << f.name;
            else
                EXPECT_EQ(f.derived(plain), f.derived(traced))
                    << commitModeName(mode) << ": " << f.name;
        }
    }
}

TEST(EventTrace, CoreEmitsEveryMilestoneKind)
{
    Program prog = testutil::delinquentLoop(2000);
    testutil::Prepared p = testutil::prepare(prog);
    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = CommitMode::InOrder;
    EventLog log(size_t{1} << 20); // wide enough to retain everything
    Core core(cfg, p.trace, p.misp);
    core.attachEventLog(&log);
    CoreStats s = core.run();
    EXPECT_EQ(log.dropped(), 0u);

    uint64_t commits = 0, fetches = 0, stalls = 0, squashes = 0;
    for (const TraceEvent &ev : log.snapshot()) {
        switch (ev.type) {
          case TraceEventType::Fetch: ++fetches; break;
          case TraceEventType::Commit: ++commits; break;
          case TraceEventType::Squash: ++squashes; break;
          case TraceEventType::CommitStall:
            ++stalls;
            // Stall records carry one of the six charged causes.
            EXPECT_NE(ev.cause, StallCause::None);
            EXPECT_NE(ev.cause, StallCause::WidthExhausted);
            EXPECT_LT(static_cast<int>(ev.cause),
                      static_cast<int>(StallCause::NUM_CAUSES));
            break;
          default: break;
        }
    }
    EXPECT_EQ(stalls, s.commitStallCycles);
    EXPECT_EQ(squashes, s.squashes);
    EXPECT_GE(fetches, s.committedInsts);
    EXPECT_GT(commits, 0u);
}

TEST(ChromeTrace, ExportRoundTripsThroughOwnParser)
{
    TraceOptions opts;
    opts.maxDynInsts = 10000;
    TraceBundle bundle = prepareTrace("CRC32", opts);
    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = CommitMode::Noreba;
    EventLog log;
    simulate(cfg, bundle, &log);
    ASSERT_GT(log.size(), 0u);

    JsonValue doc = chromeTraceJson(log, "CRC32/Noreba");
    std::string err;
    JsonValue parsed = JsonValue::parse(doc.dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_TRUE(parsed.isObject());

    const JsonValue *events = parsed.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->size(), 4u); // metadata + real events

    size_t slices = 0, instants = 0, meta = 0;
    for (size_t i = 0; i < events->size(); ++i) {
        const JsonValue &e = events->at(i);
        ASSERT_TRUE(e.isObject());
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        const std::string &kind = ph->asString();
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        if (kind == "X") {
            ++slices;
            ASSERT_NE(e.find("ts"), nullptr);
            ASSERT_NE(e.find("dur"), nullptr);
            EXPECT_GE(e.find("dur")->asUint(), 1u);
        } else if (kind == "i") {
            ++instants;
            ASSERT_NE(e.find("ts"), nullptr);
            ASSERT_NE(e.find("s"), nullptr);
        } else {
            EXPECT_EQ(kind, "M");
            ++meta;
        }
    }
    EXPECT_GT(slices, 0u);
    EXPECT_GT(instants, 0u);
    EXPECT_EQ(meta, 4u);

    const JsonValue *other = parsed.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("retainedEvents")->asUint(), log.size());
    EXPECT_EQ(other->find("droppedEvents")->asUint(), log.dropped());
}

TEST(ChromeTrace, WriteProducesParseableFile)
{
    EventLog log(16);
    log.emit(1, TraceEventType::Fetch, 0, 0x100);
    log.emit(5, TraceEventType::Commit, 0, 0x100);
    log.emit(6, TraceEventType::CommitStall, TRACE_NONE, 0,
             StallCause::Empty);

    std::string path = ::testing::TempDir() + "chrome_trace_test.json";
    writeChromeTrace(path, log, "synthetic");

    std::string text;
    {
        FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    std::string err;
    JsonValue parsed = JsonValue::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    const JsonValue *events = parsed.find("traceEvents");
    ASSERT_NE(events, nullptr);
    // 4 metadata + 1 slice + 1 stall instant.
    EXPECT_EQ(events->size(), 6u);
    std::remove(path.c_str());
}

} // namespace
