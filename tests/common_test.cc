/** @file Unit tests for the common utilities (rng, stats, tables). */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace noreba {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversTheRange)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 20000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Stats, CounterBasics)
{
    Counter c("events");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    ++c;
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.name(), "events");
}

TEST(Stats, DistributionTracksMinMaxMean)
{
    Distribution d;
    d.sample(2.0);
    d.sample(8.0);
    d.sample(5.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(Stats, GeomeanOfPowers)
{
    Geomean g;
    g.sample(2.0);
    g.sample(8.0);
    EXPECT_NEAR(g.value(), 4.0, 1e-9);
}

TEST(Stats, GeomeanSkipsNonPositive)
{
    Geomean g;
    g.sample(4.0);
    g.sample(0.0);
    g.sample(-1.0);
    EXPECT_EQ(g.count(), 1u);
    EXPECT_NEAR(g.value(), 4.0, 1e-9);
}

TEST(Stats, GeomeanHelper)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Stats, StatGroupGetOrCreate)
{
    StatGroup g;
    g.counter("a").inc(3);
    g.counter("a").inc(2);
    EXPECT_EQ(g.value("a"), 5u);
    EXPECT_EQ(g.value("missing"), 0u);
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
}

TEST(Table, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name    value"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormattersRound)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.042, 1), "4.2%");
    EXPECT_EQ(fmtPercent(-0.05, 0), "-5%");
}

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
}

} // namespace
} // namespace noreba
