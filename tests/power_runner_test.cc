/**
 * @file
 * Tests for the power/area model (Figure 16 inputs) and the end-to-end
 * runner (trace bundles, setup stripping, determinism).
 */

#include <gtest/gtest.h>

#include "power/power_model.h"
#include "sim/runner.h"

namespace noreba {
namespace {

TraceBundle
mcfBundle()
{
    TraceOptions opts;
    opts.maxDynInsts = 40000;
    return prepareTrace("mcf", opts);
}

TEST(Power, BreakdownCoversEveryStructure)
{
    TraceBundle b = mcfBundle();
    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = CommitMode::Noreba;
    CoreStats s = simulate(cfg, b);
    PowerBreakdown pb = computePower(cfg, s);
    for (const auto &name : powerStructureNames()) {
        ASSERT_TRUE(pb.watts.count(name)) << name;
        EXPECT_GE(pb.watts.at(name), 0.0) << name;
    }
    EXPECT_GT(pb.totalWatts(), 1.0);
    EXPECT_GT(pb.totalArea(), 5.0);
}

TEST(Power, NorebaStructuresVanishOnBaseline)
{
    TraceBundle b = mcfBundle();
    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = CommitMode::InOrder;
    CoreStats s = simulate(cfg, b);
    PowerBreakdown pb = computePower(cfg, s);
    EXPECT_EQ(pb.watts.at("CQT+BIT+DCT"), 0.0);
    EXPECT_EQ(pb.watts.at("CIT"), 0.0);
    EXPECT_EQ(pb.area.at("CIT"), 0.0);
}

TEST(Power, OverheadWithinPaperBand)
{
    TraceBundle b = mcfBundle();
    CoreConfig ino = skylakeConfig();
    ino.commitMode = CommitMode::InOrder;
    PowerBreakdown pIno = computePower(ino, simulate(ino, b));

    CoreConfig nor = skylakeConfig();
    nor.commitMode = CommitMode::Noreba;
    PowerBreakdown pNor = computePower(nor, simulate(nor, b));

    double powerOverhead =
        pNor.totalWatts() / pIno.totalWatts() - 1.0;
    double areaOverhead = pNor.totalArea() / pIno.totalArea() - 1.0;
    // Paper: ~4% power, ~8% area (suite averages; Figure 16). This
    // checks a single high-gain workload, where the higher per-cycle
    // activity of finishing sooner dominates, so the band is wider.
    EXPECT_GT(powerOverhead, 0.0);
    EXPECT_LT(powerOverhead, 0.25);
    EXPECT_GT(areaOverhead, 0.02);
    EXPECT_LT(areaOverhead, 0.15);
}

TEST(Power, QueuePowerGrowsSuperlinearlyWhenHuge)
{
    TraceBundle b = mcfBundle();
    auto powerAt = [&](int nq, int entries) {
        CoreConfig cfg = skylakeConfig();
        cfg.commitMode = CommitMode::Noreba;
        cfg.srob.numBrCqs = nq;
        cfg.srob.brCqEntries = entries;
        cfg.srob.prCqEntries = entries;
        return computePower(cfg, simulate(cfg, b)).totalWatts();
    };
    double small = powerAt(2, 8);
    double medium = powerAt(4, 16);
    double huge = powerAt(8, 64);
    EXPECT_LT(small, medium);
    // The Figure 10 knee: the step to very large groups costs much
    // more than the step to medium ones.
    EXPECT_GT(huge - medium, 2.0 * (medium - small));
}

TEST(Runner, BundleCarriesPassAndPredictorData)
{
    TraceBundle b = mcfBundle();
    EXPECT_EQ(b.workload, "mcf");
    EXPECT_GT(b.pass.numMarkedBranches, 0);
    EXPECT_EQ(b.misp.size(), b.trace.size());
    EXPECT_GT(b.trace.setupInsts, 0u);
}

TEST(Runner, StripSetupsKeepsGuardsAndWork)
{
    TraceOptions with;
    with.maxDynInsts = 30000;
    TraceBundle a = prepareTrace("mcf", with);

    TraceOptions strip = with;
    strip.stripSetups = true;
    TraceBundle b = prepareTrace("mcf", strip);

    EXPECT_EQ(b.trace.setupInsts, 0u);
    EXPECT_EQ(a.trace.dynInsts, b.trace.dynInsts);
    EXPECT_EQ(a.checksum, b.checksum);

    // Guard info survives the strip: same number of guarded records,
    // and every guard still points at an older branch record.
    auto countGuarded = [](const DynamicTrace &t) {
        uint64_t n = 0;
        for (const auto &rec : t.records)
            n += rec.guardIdx != TRACE_NONE;
        return n;
    };
    EXPECT_EQ(countGuarded(a.trace), countGuarded(b.trace));
    for (size_t i = 0; i < b.trace.size(); ++i) {
        TraceIdx g = b.trace.records[i].guardIdx;
        if (g != TRACE_NONE) {
            ASSERT_LT(g, static_cast<TraceIdx>(i));
            EXPECT_TRUE(b.trace.records[static_cast<size_t>(g)]
                            .isBranchSite());
        }
    }
}

TEST(Runner, StrippedTraceIsFasterUnderNoreba)
{
    TraceOptions with;
    with.maxDynInsts = 30000;
    TraceBundle a = prepareTrace("dijkstra", with);
    TraceOptions strip = with;
    strip.stripSetups = true;
    TraceBundle b = prepareTrace("dijkstra", strip);

    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = CommitMode::Noreba;
    CoreStats sWith = simulate(cfg, a);
    CoreStats sPerfect = simulate(cfg, b);
    EXPECT_LE(sPerfect.cycles, sWith.cycles);
}

TEST(Runner, SimulateIsDeterministic)
{
    TraceBundle b = mcfBundle();
    CoreConfig cfg = skylakeConfig();
    cfg.commitMode = CommitMode::Noreba;
    CoreStats s1 = simulate(cfg, b);
    CoreStats s2 = simulate(cfg, b);
    EXPECT_EQ(s1.cycles, s2.cycles);
    EXPECT_EQ(s1.committedOoO, s2.committedOoO);
}

TEST(Runner, SpeedupHelper)
{
    CoreStats a, b;
    a.cycles = 200;
    b.cycles = 100;
    EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
}

} // namespace
} // namespace noreba
