/**
 * @file
 * Differential tests for the incrementally maintained pipeline-state
 * indices (uarch/pipeline_index.h) and the intrusive list they build
 * on. The shadow mode (CoreConfig::shadowIndexCheck) re-derives every
 * index answer from a naive scan of the master ROB each cycle and
 * panics on the first divergence; these tests drive it through all
 * seven commit modes, the full workload registry, and randomized
 * high-misprediction programs whose squash storms stress the rollback
 * path. Every shadowed run must also produce bit-identical CoreStats
 * to its unshadowed twin (observation must not perturb).
 */

#include <gtest/gtest.h>

#include "common/intrusive_list.h"
#include "test_util.h"

namespace noreba {
namespace {

using testutil::Prepared;
using testutil::prepare;

/** @name IntrusiveList unit tests @{ */

struct Node
{
    Node *prev = nullptr;
    Node *next = nullptr;
    bool linked = false;
    int v = 0;
};

using List = IntrusiveList<Node, &Node::prev, &Node::next, &Node::linked>;

TEST(IntrusiveList, PushBackKeepsOrder)
{
    Node n[4];
    List l;
    EXPECT_TRUE(l.empty());
    for (int i = 0; i < 4; ++i) {
        n[i].v = i;
        l.pushBack(&n[i]);
    }
    EXPECT_EQ(l.size(), 4u);
    int want = 0;
    for (Node *p = l.head(); p; p = List::next(p))
        EXPECT_EQ(p->v, want++);
    EXPECT_EQ(want, 4);
    EXPECT_EQ(l.tail()->v, 3);
}

TEST(IntrusiveList, EraseMiddleHeadTail)
{
    Node n[5];
    List l;
    for (auto &node : n)
        l.pushBack(&node);

    l.erase(&n[2]); // middle
    EXPECT_FALSE(List::linked(&n[2]));
    EXPECT_EQ(List::next(&n[1]), &n[3]);
    EXPECT_EQ(List::prev(&n[3]), &n[1]);

    l.erase(&n[0]); // head
    EXPECT_EQ(l.head(), &n[1]);
    EXPECT_EQ(List::prev(&n[1]), nullptr);

    l.erase(&n[4]); // tail
    EXPECT_EQ(l.tail(), &n[3]);
    EXPECT_EQ(l.size(), 2u);

    // Erased nodes can be re-linked (the frontier does this on
    // re-dispatch after a squash).
    l.pushBack(&n[2]);
    EXPECT_EQ(l.tail(), &n[2]);
    EXPECT_EQ(l.size(), 3u);
}

TEST(IntrusiveList, ClearUnlinksAll)
{
    Node n[3];
    List l;
    for (auto &node : n)
        l.pushBack(&node);
    l.clear();
    EXPECT_TRUE(l.empty());
    EXPECT_EQ(l.head(), nullptr);
    EXPECT_EQ(l.tail(), nullptr);
    for (auto &node : n)
        EXPECT_FALSE(List::linked(&node));
}
/** @} */

constexpr CommitMode ALL_MODES[] = {
    CommitMode::InOrder,       CommitMode::NonSpecOoO,
    CommitMode::Noreba,        CommitMode::IdealReconv,
    CommitMode::SpeculativeBR, CommitMode::SpeculativeFull,
    CommitMode::ValidationBuffer,
};

/** Every counter equal, field by field (via the declarative table). */
void
expectStatsEqual(const CoreStats &a, const CoreStats &b,
                 const std::string &label)
{
    for (const CoreStatsField &f : CORE_STATS_FIELDS) {
        if (f.counter)
            EXPECT_EQ(a.*f.counter, b.*f.counter)
                << label << ": " << f.name;
    }
}

/**
 * Run one prepared trace with and without the shadow check. The
 * shadowed run panics (aborting the test) on any index divergence; the
 * pair must otherwise be bit-identical.
 */
CoreStats
runShadowPair(const Prepared &p, CommitMode mode, CoreConfig cfg,
              const std::string &label)
{
    cfg.commitMode = mode;
    cfg.shadowIndexCheck = false;
    Core plain(cfg, p.trace, p.misp);
    CoreStats base = plain.run();

    cfg.shadowIndexCheck = true;
    Core shadowed(cfg, p.trace, p.misp);
    CoreStats shadow = shadowed.run();

    expectStatsEqual(base, shadow,
                     label + "/" + commitModeName(mode));
    return base;
}

/**
 * A randomized squash-storm program: a loop with three ~50%-taken
 * data-dependent branches per iteration (hash-indexed loads from a
 * random table), a branch-guarded store, and a rare FENCE, so every
 * pipeline event the index tracks — dispatch, resolve, TLB check,
 * commit, squash, free — fires constantly under heavy misprediction.
 */
Program
stormProgram(uint64_t seed, int64_t iters)
{
    Program prog("storm" + std::to_string(seed));
    Rng rng(seed);
    const int64_t tableLen = 1 << 12;
    uint64_t table = prog.allocGlobal(tableLen * 8);
    for (int64_t i = 0; i < tableLen; ++i)
        prog.poke64(table + static_cast<uint64_t>(i) * 8, rng.next());

    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int loop = b.newBlock("loop");
    int a1 = b.newBlock("a1");
    int j1 = b.newBlock("j1");
    int a2 = b.newBlock("a2");
    int j2 = b.newBlock("j2");
    int a3 = b.newBlock("a3");
    int j3 = b.newBlock("j3");
    int fb = b.newBlock("fence");
    int next = b.newBlock("next");
    int exit = b.newBlock("exit");
    const AliasRegion R = 1;

    b.at(entry)
        .li(S2, static_cast<int64_t>(table))
        .li(S3, 0)
        .li(S4, iters)
        .li(S5, 0)
        .li(S7, tableLen - 1)
        .li(S8, 0x9e3779b9)
        .fallthrough(loop);
    b.at(loop)
        .mul(T0, S3, S8)
        .srli(T0, T0, 11)
        .and_(T0, T0, S7)
        .slli(T0, T0, 3)
        .add(T0, S2, T0)
        .ld(T1, T0, 0, R)
        .andi(T2, T1, 1)
        .beq(T2, ZERO, a1, j1); // ~50% data-dependent branch
    b.at(a1).add(S5, S5, T1).jump(j1);
    b.at(j1).andi(T2, T1, 2).bne(T2, ZERO, a2, j2); // ~50%
    b.at(a2).sd(S5, T0, 0, R).jump(j2); // branch-guarded store
    b.at(j2).andi(T2, T1, 4).beq(T2, ZERO, a3, j3); // ~50%
    b.at(a3).ld(T3, T0, 0, R).add(S5, S5, T3).jump(j3);
    b.at(j3).andi(T2, T1, 255).beq(T2, ZERO, fb, next);
    b.at(fb).fence().jump(next); // rare (~1/256) memory barrier
    b.at(next).addi(S3, S3, 1).blt(S3, S4, loop, exit);
    b.at(exit).halt();
    prog.finalize();
    runBranchDependencePass(prog);
    return prog;
}

/** A small window magnifies squash/reclaim edge interleavings. */
CoreConfig
tinyConfig()
{
    CoreConfig cfg = skylakeConfig();
    cfg.name = "tiny";
    cfg.robEntries = 32;
    cfg.iqEntries = 16;
    cfg.lqEntries = 12;
    cfg.sqEntries = 10;
    cfg.rfEntries = 48;
    cfg.srob.numBrCqs = 2;
    cfg.srob.brCqEntries = 8;
    cfg.srob.prCqEntries = 16;
    cfg.srob.citEntries = 8;
    cfg.srob.cqtEntries = 8;
    return cfg;
}

TEST(PipelineIndexShadow, WorkloadRegistryAllModes)
{
    TraceOptions opts;
    opts.maxDynInsts = 6000;
    for (const std::string &name : workloadNames()) {
        TraceBundle bundle = prepareTrace(name, opts);
        for (CommitMode mode : ALL_MODES) {
            CoreConfig cfg = skylakeConfig();
            cfg.commitMode = mode;
            cfg.shadowIndexCheck = false;
            Core plain(cfg, bundle.view(), bundle.misp);
            CoreStats base = plain.run();

            cfg.shadowIndexCheck = true;
            Core shadowed(cfg, bundle.view(), bundle.misp);
            CoreStats shadow = shadowed.run();

            expectStatsEqual(base, shadow,
                             name + "/" + commitModeName(mode));
        }
    }
}

TEST(PipelineIndexShadow, SquashStormsAllModes)
{
    for (uint64_t seed : {11u, 23u}) {
        Program prog = stormProgram(seed, 1100);
        Prepared p = prepare(prog, 60000);
        for (CommitMode mode : ALL_MODES) {
            std::string label = "storm" + std::to_string(seed);
            CoreStats s = runShadowPair(p, mode, skylakeConfig(), label);
            // The storm must actually storm, or this test has no
            // teeth: ~50%-taken data-dependent branches should squash
            // hundreds of times in 1100 iterations.
            EXPECT_GT(s.squashes, 100u) << label;
            runShadowPair(p, mode, tinyConfig(), label + "/tiny");
        }
    }
}

TEST(PipelineIndexShadow, EarlyCommitLoadZombies)
{
    // ECL retires loads before their data returns, so committed-
    // incomplete zombies cross squashes — the nastiest case for the
    // frontier and the unchecked-memory index.
    Program prog = stormProgram(7, 900);
    Prepared p = prepare(prog, 50000);
    for (CommitMode mode : ALL_MODES) {
        CoreConfig cfg = skylakeConfig();
        cfg.earlyCommitLoads = true;
        runShadowPair(p, mode, cfg, "ecl");
        CoreConfig tiny = tinyConfig();
        tiny.earlyCommitLoads = true;
        tiny.attributeStalls = true;
        runShadowPair(p, mode, tiny, "ecl/tiny");
    }
}

TEST(PipelineIndexShadow, DelinquentLoopMatchesOracle)
{
    // The canonical NOREBA workload: deep unresolved-branch chains with
    // real guard annotations from the compiler pass.
    Program prog = testutil::delinquentLoop(800);
    Prepared p = prepare(prog);
    for (CommitMode mode : ALL_MODES)
        runShadowPair(p, mode, skylakeConfig(), "delinquent");
}

} // namespace
} // namespace noreba
