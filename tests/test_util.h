/**
 * @file
 * Shared helpers for the pipeline-level tests: small program builders,
 * trace preparation, and core construction.
 */

#ifndef NOREBA_TESTS_TEST_UTIL_H
#define NOREBA_TESTS_TEST_UTIL_H

#include "common/rng.h"
#include "compiler/branch_dep.h"
#include "interp/interpreter.h"
#include "ir/builder.h"
#include "sim/runner.h"
#include "uarch/branch_predictor.h"
#include "uarch/core.h"

namespace noreba::testutil {

/** Interpreted trace + misprediction verdicts for a finished Program. */
struct Prepared
{
    DynamicTrace trace;
    std::vector<uint8_t> misp;
};

inline Prepared
prepare(const Program &prog, uint64_t maxDynInsts = 2'000'000)
{
    Prepared out;
    Interpreter interp(prog);
    InterpOptions opts;
    opts.maxDynInsts = maxDynInsts;
    out.trace = interp.run(opts);
    out.misp = precomputeMispredictions(out.trace);
    return out;
}

inline CoreStats
run(const Prepared &p, CommitMode mode,
    const CoreConfig &base = skylakeConfig())
{
    CoreConfig cfg = base;
    cfg.commitMode = mode;
    Core core(cfg, p.trace, p.misp);
    return core.run();
}

/**
 * A counted loop whose body is supplied by the caller; the loop runs
 * `iters` times with T6 as the induction variable.
 */
template <typename BodyFn>
Program
countedLoop(int64_t iters, BodyFn &&body, std::string name = "loop")
{
    Program prog(std::move(name));
    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int loop = b.newBlock("loop");
    int exit = b.newBlock("exit");
    b.at(entry).li(T6, 0).li(T5, iters).fallthrough(loop);
    b.at(loop);
    body(b, prog, loop, exit);
    b.addi(T6, T6, 1).blt(T6, T5, loop, exit);
    b.at(exit).halt();
    prog.finalize();
    return prog;
}

/**
 * The canonical NOREBA opportunity: a loop whose delinquent (cache
 * missing, data-dependent) branch guards a tiny body while the rest of
 * the iteration is independent. Annotated by the real pass.
 */
inline Program
delinquentLoop(int64_t iters = 6000)
{
    Program prog("delinquent");
    Rng rng(42);
    const int64_t tableLen = 1 << 18; // 2 MB
    uint64_t table = prog.allocGlobal(tableLen * 8);
    for (int64_t i = 0; i < tableLen; ++i)
        prog.poke64(table + static_cast<uint64_t>(i) * 8, rng.next());

    IRBuilder b(prog);
    int entry = b.newBlock("entry");
    int loop = b.newBlock("loop");
    int rare = b.newBlock("rare");
    int next = b.newBlock("next");
    int exit = b.newBlock("exit");
    const AliasRegion R = 1;
    b.at(entry)
        .li(S2, static_cast<int64_t>(table))
        .li(S3, 0)
        .li(S4, iters)
        .li(S5, 0)
        .li(S6, 0)
        .li(S7, tableLen - 1)
        .li(S8, 0x9e3779b9)
        .fallthrough(loop);
    b.at(loop)
        .mul(T0, S3, S8)
        .srli(T0, T0, 13)
        .and_(T0, T0, S7)
        .slli(T0, T0, 3)
        .add(T0, S2, T0)
        .ld(T1, T0, 0, R)          // delinquent load
        .andi(T2, T1, 15)
        .beq(T2, ZERO, rare, next); // delinquent branch (~6%)
    b.at(rare).add(S5, S5, T1).jump(next);
    b.at(next)
        .addi(S6, S6, 3)           // independent work
        .xori(S6, S6, 1)
        .srli(T3, S6, 2)
        .add(S6, S6, T3)
        .addi(S3, S3, 1)
        .blt(S3, S4, loop, exit);
    b.at(exit).halt();
    prog.finalize();
    runBranchDependencePass(prog);
    return prog;
}

} // namespace noreba::testutil

#endif // NOREBA_TESTS_TEST_UTIL_H
