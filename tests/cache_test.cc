/** @file Unit tests for the cache hierarchy, TLB and DCPT prefetcher. */

#include <gtest/gtest.h>

#include "uarch/cache.h"
#include "uarch/prefetcher.h"

namespace noreba {
namespace {

CacheConfig
tinyCache(int sizeBytes, int ways, int latency)
{
    CacheConfig cfg;
    cfg.sizeBytes = sizeBytes;
    cfg.ways = ways;
    cfg.lineBytes = 64;
    cfg.latency = latency;
    return cfg;
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCache(4096, 4, 3), "t");
    EXPECT_FALSE(c.lookup(0x1000));
    c.fill(0x1000);
    EXPECT_TRUE(c.lookup(0x1000));
    EXPECT_TRUE(c.lookup(0x1030)); // same 64 B line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsOldest)
{
    // 4 sets x 2 ways; three lines mapping to the same set.
    Cache c(tinyCache(512, 2, 1), "t");
    auto addrForSet0 = [](int i) {
        return static_cast<uint64_t>(i) * 4 * 64; // stride sets*line
    };
    c.fill(addrForSet0(0));
    c.fill(addrForSet0(1));
    EXPECT_TRUE(c.lookup(addrForSet0(0))); // refresh LRU of line 0
    c.fill(addrForSet0(2));                // must evict line 1
    EXPECT_TRUE(c.contains(addrForSet0(0)));
    EXPECT_FALSE(c.contains(addrForSet0(1)));
    EXPECT_TRUE(c.contains(addrForSet0(2)));
}

TEST(Cache, ContainsDoesNotTouchStats)
{
    Cache c(tinyCache(4096, 4, 3), "t");
    c.contains(0x2000);
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Hierarchy, LatenciesMatchLevels)
{
    CoreConfig cfg;
    MemoryHierarchy mem(cfg);
    // Cold: full DRAM path.
    EXPECT_EQ(mem.access(0x100000, false),
              cfg.l3.latency + cfg.dramLatency);
    // Now resident in L1.
    EXPECT_EQ(mem.access(0x100000, false), cfg.l1d.latency);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    CoreConfig cfg;
    MemoryHierarchy mem(cfg);
    mem.access(0x40000000, false);
    // Blast the L1 set with conflicting lines (same L1 set, different
    // L2 sets are fine).
    int l1Sets = cfg.l1d.sizeBytes / (cfg.l1d.lineBytes * cfg.l1d.ways);
    for (int i = 1; i <= cfg.l1d.ways + 2; ++i) {
        mem.access(0x40000000 +
                       static_cast<uint64_t>(i) * l1Sets * 64,
                   false);
    }
    int lat = mem.access(0x40000000, false);
    EXPECT_EQ(lat, cfg.l2.latency);
}

TEST(Hierarchy, PrefetchLandsInL2NotL1)
{
    CoreConfig cfg;
    MemoryHierarchy mem(cfg);
    mem.prefetch(0x7000000);
    EXPECT_FALSE(mem.inL1D(0x7000000));
    EXPECT_EQ(mem.access(0x7000000, false), cfg.l2.latency);
}

TEST(Hierarchy, FetchPathFillsL1I)
{
    CoreConfig cfg;
    MemoryHierarchy mem(cfg);
    int cold = mem.fetchAccess(0x10000);
    EXPECT_GT(cold, 0);
    EXPECT_EQ(mem.fetchAccess(0x10000), 0); // pipelined L1I hit
}

TEST(Tlb, HitAfterWalk)
{
    Tlb tlb(64, 30);
    EXPECT_EQ(tlb.access(0x5000), 31); // cold: walk
    EXPECT_EQ(tlb.access(0x5ff8), 1);  // same page
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, ConflictEvicts)
{
    Tlb tlb(4, 10);
    tlb.access(0x0);
    tlb.access(4ull * 4096); // same slot (vpn % 4)
    EXPECT_EQ(tlb.access(0x0), 11); // walked again
}

TEST(Dcpt, DetectsConstantStride)
{
    CoreConfig cfg;
    MemoryHierarchy mem(cfg);
    DcptPrefetcher dcpt;
    // Stride of 2 blocks from one PC.
    for (int i = 0; i < 32; ++i)
        dcpt.observe(0x400, 0x1000000 + static_cast<uint64_t>(i) * 128,
                     mem);
    EXPECT_GT(dcpt.issued(), 8u);
    EXPECT_GT(dcpt.patternHits(), 0u);
    // A near-future address of the stream should be L2-resident.
    EXPECT_EQ(mem.access(0x1000000 + 33 * 128, false), cfg.l2.latency);
}

TEST(Dcpt, IgnoresSameLineAccesses)
{
    CoreConfig cfg;
    MemoryHierarchy mem(cfg);
    DcptPrefetcher dcpt;
    for (int i = 0; i < 64; ++i)
        dcpt.observe(0x400, 0x2000000 + static_cast<uint64_t>(i % 8),
                     mem);
    EXPECT_EQ(dcpt.issued(), 0u);
}

TEST(Dcpt, RandomStreamBarelyPrefetches)
{
    CoreConfig cfg;
    MemoryHierarchy mem(cfg);
    DcptPrefetcher dcpt;
    uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 256; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        dcpt.observe(0x400, x % (1 << 24), mem);
    }
    EXPECT_LT(dcpt.issued(), 16u);
}

TEST(Dcpt, AlternatingDeltasReplay)
{
    CoreConfig cfg;
    MemoryHierarchy mem(cfg);
    DcptPrefetcher dcpt;
    // Deltas +1, +3, +1, +3 ... (in blocks).
    uint64_t addr = 0x3000000;
    for (int i = 0; i < 40; ++i) {
        dcpt.observe(0x500, addr, mem);
        addr += (i % 2 == 0) ? 64 : 192;
    }
    EXPECT_GT(dcpt.patternHits(), 0u);
    EXPECT_GT(dcpt.issued(), 4u);
}

TEST(Dcpt, SeparatePcsTrainSeparately)
{
    CoreConfig cfg;
    MemoryHierarchy mem(cfg);
    DcptPrefetcher dcpt;
    for (int i = 0; i < 32; ++i) {
        dcpt.observe(0x600, 0x4000000 + static_cast<uint64_t>(i) * 64,
                     mem);
        dcpt.observe(0x604, 0x5000000 + static_cast<uint64_t>(i) * 256,
                     mem);
    }
    EXPECT_GT(dcpt.issued(), 16u);
}

} // namespace
} // namespace noreba
